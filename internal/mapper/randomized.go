package mapper

import (
	"fmt"
	"math/rand"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Randomized hybrid mapping (§6): "Vazirani has suggested a
// coupon-collecting initial phase to find most of the graph. Probes of
// maximal depth are sent out in random directions ... the whole length of
// the path is effectively explored with one probe. The dangling edges of
// the resulting graph can then be explored in a breadth-first way."
//
// The coupon phase assumes the §6 firmware change: a host receiving a
// message with leftover routing flits reads it and responds
// (simnet.TolerantProber), telling the mapper how much of the random route
// the network accepted. Every such response contributes a whole chain of
// switch vertices ending in a host anchor — dense merge fodder — after
// which the ordinary BFS (phase 2) only has to fill in the gaps, skipping
// every slot the chains already occupy.

// RandomizedConfig parameterises a hybrid run.
type RandomizedConfig struct {
	Config
	// CouponProbes is the number of maximal-depth random probes (phase 1).
	CouponProbes int
	// MaxTurnMagnitude bounds the random turns drawn; small magnitudes
	// survive longer on densely-populated switches (§3.3's observation).
	MaxTurnMagnitude int
	// Rng drives the random directions; required.
	Rng *rand.Rand
}

// RandomizedRun executes the coupon-collecting hybrid.
func RandomizedRun(p simnet.TolerantProber, cfg RandomizedConfig) (*Map, error) {
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("mapper: Depth must be at least 1, got %d: %w", cfg.Depth, ErrDepthExceeded)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("mapper: RandomizedConfig.Rng is required")
	}
	if cfg.MaxVertices == 0 {
		cfg.MaxVertices = 1 << 20
	}
	if err := resolveMaxPorts(&cfg.Config, p); err != nil {
		return nil, err
	}
	if cfg.MaxTurnMagnitude <= 0 || cfg.MaxTurnMagnitude > cfg.MaxPorts-1 {
		cfg.MaxTurnMagnitude = 4
	}
	r := &run{cfg: cfg.Config, p: p, model: newModel()}
	r.model.maxPorts = cfg.MaxPorts
	r.initPipeline()
	start := p.Clock()

	h0, _ := r.model.hostVertex(p.LocalHost(), simnet.Route{})
	rootSwitch := r.model.newVertex(topology.SwitchNode, "", simnet.Route{})
	r.model.addEdge(h0, 0, rootSwitch, 0)

	// Phase 1: coupon collecting. Each successful random probe of maximal
	// depth yields a chain root → ... → host; walk it into the model,
	// reusing vertices where slots are already known and creating fresh
	// ones otherwise. The random routes depend only on the Rng, so they are
	// all drawn up front; with the pipelined engine active the whole batch
	// goes through the window (the chains are walked in submission order,
	// so the model is the same either way).
	routes := make([]simnet.Route, cfg.CouponProbes)
	for i := range routes {
		route := make(simnet.Route, cfg.Depth)
		for j := range route {
			mag := 1 + cfg.Rng.Intn(cfg.MaxTurnMagnitude)
			if cfg.Rng.Intn(2) == 0 {
				mag = -mag
			}
			route[j] = simnet.Turn(mag)
		}
		routes[i] = route
	}
	walk := func(route simnet.Route, host string, consumed int, ok bool) {
		if !ok {
			return
		}
		r.walkChain(rootSwitch, route[:consumed], host)
		r.model.processMerges()
	}
	if r.win != nil && r.win.Prober().Probes().Has(simnet.CapTolerant) {
		batch := make([]simnet.Probe, len(routes))
		for i, route := range routes {
			batch[i] = simnet.Probe{Kind: simnet.ProbeTolerant, Route: route}
		}
		for i, res := range r.win.Do(batch) {
			walk(routes[i], res.Host, res.Consumed, res.OK)
		}
	} else {
		for _, route := range routes {
			host, consumed, ok := p.TolerantHostProbe(route)
			walk(route, host, consumed, ok)
		}
	}

	// Phase 2: breadth-first completion over the dangling edges. Every live
	// switch vertex becomes a frontier job carrying the route and entry
	// index recorded at its creation; the standard explorer skips occupied
	// slots, so only genuinely unknown ports cost probes.
	rootJob := job{v: rootSwitch, route: simnet.Route{}}
	r.front = append(r.front, rootJob)
	for _, v := range r.model.liveVertices() {
		if v.kind != topology.SwitchNode || v == rootSwitch {
			continue
		}
		root, _ := find(v)
		if root != v {
			continue
		}
		// Chain vertices are always created with their entry port at frame
		// index 0, like BFS vertices, so no extra entry offset is needed.
		r.front = append(r.front, job{v: v, route: v.probe})
	}
	for len(r.front) > 0 {
		jb := r.front[0]
		r.front = r.front[1:]
		if err := r.explore(jb); err != nil {
			return nil, err
		}
	}
	r.prune()

	r.stats.Elapsed = p.Clock() - start
	if ns, ok := p.(interface{ Stats() simnet.Stats }); ok {
		r.stats.Probes = ns.Stats()
	}
	r.stats.Inconsistent = r.model.Inconsistencies
	r.finishPipeline()
	net, mapperID, err := r.export()
	if err != nil {
		return nil, err
	}
	return &Map{Network: net, Mapper: mapperID, Stats: r.stats, Series: r.series}, nil
}

// walkChain threads one successful probe prefix through the model: the
// probe consumed the turns in route and terminated at host. Known slots are
// followed (same port ⇒ same actual cable), unknown ones create fresh
// vertices; the final hop anchors the chain at the host's canonical vertex.
func (r *run) walkChain(rootSwitch *Vertex, route simnet.Route, host string) {
	cur, shift := find(rootSwitch)
	entry := shift // frame index of the current vertex's entry port
	for i, t := range route {
		idx := entry + int(t)
		last := i == len(route)-1
		// Follow an existing edge when the slot is already known.
		var next *Vertex
		var nextEntry int
		if es := cur.slots[idx]; len(es) > 0 {
			for _, e := range es {
				if e.deleted {
					continue
				}
				far, fidx := e.otherSide(cur, idx)
				next, nextEntry = far, fidx
				break
			}
		}
		if next == nil {
			prefix := route[:i+1].Clone()
			if last {
				hv, _ := r.model.hostVertex(host, prefix)
				r.model.addEdge(cur, idx, hv, 0)
				return
			}
			w := r.model.newVertex(topology.SwitchNode, "", prefix)
			r.model.addEdge(cur, idx, w, 0)
			next, nextEntry = w, 0
		} else if last {
			// The slot is known; nothing new to learn from this chain end,
			// but assert consistency: a host must live there.
			if next.kind != topology.HostNode {
				// The chain ends at a host the model thinks is a switch:
				// record the host edge and let the merge machinery object.
				hv, _ := r.model.hostVertex(host, route[:i+1].Clone())
				r.model.addEdge(cur, idx, hv, 0)
			}
			return
		}
		if next.kind == topology.HostNode {
			// A mid-chain hop into a host vertex contradicts the probe
			// having been forwarded there; possible only under noise. Stop
			// threading this chain.
			return
		}
		rn, sn := find(next)
		cur, entry = rn, nextEntry+sn
	}
}
