package mapper

import (
	"fmt"

	"sanmap/internal/topology"
)

// Parallel mapping (§6): "It is plausible that every network host could map
// local regions, and upon discovering another host exchange their partial
// maps. The central question is how to merge such local views into a
// stable, globally-consistent one."
//
// MergeMaps answers that question with the same deductive machinery the
// single mapper uses: each partial map's switches become fresh model
// vertices (their concrete ports are just another relative frame), hosts
// are shared by unique name, and the mergelist propagation of §3.3
// identifies every switch the partial maps have in common — anchored at
// shared hosts, cascading through port conflicts. The merged model is then
// pruned and exported like any other.

// MergeMaps merges partial maps into one global view. The first map's
// mapper host names the merged map's vantage point. Partial maps must
// jointly cover the network and overlap enough for the anchoring deductions
// to identify shared switches; disjoint or barely-overlapping views yield a
// merged-but-still-partial result (never a wrong one, absent probe noise).
func MergeMaps(partials ...*Map) (*Map, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("mapper: MergeMaps needs at least one map")
	}
	model := newModel()
	for _, pm := range partials {
		if pm == nil || pm.Network == nil {
			return nil, fmt.Errorf("mapper: MergeMaps given a nil map")
		}
		// Plan for the largest radix any partial observed, so the merged
		// feasible windows do not truncate large-radix fabrics.
		if mp := pm.Network.MaxPorts(); mp > model.maxPorts {
			model.maxPorts = mp
		}
		importNetwork(model, pm.Network)
		model.processMerges()
	}
	model.prune(partials[0].Network.NameOf(partials[0].Mapper))

	net, mapperID, err := exportModel(model, partials[0].Network.NameOf(partials[0].Mapper))
	if err != nil {
		return nil, err
	}
	out := &Map{Network: net, Mapper: mapperID}
	out.Stats.Merges = model.nextID - model.liveVerts
	out.Stats.Inconsistent = model.Inconsistencies
	for _, pm := range partials {
		out.Stats.Probes.HostProbes += pm.Stats.Probes.HostProbes
		out.Stats.Probes.HostHits += pm.Stats.Probes.HostHits
		out.Stats.Probes.SwitchProbes += pm.Stats.Probes.SwitchProbes
		out.Stats.Probes.SwitchHits += pm.Stats.Probes.SwitchHits
		if pm.Stats.Elapsed > out.Stats.Elapsed {
			// Partial maps were produced concurrently; the merged map is
			// ready when the slowest mapper finishes.
			out.Stats.Elapsed = pm.Stats.Elapsed
		}
	}
	return out, nil
}

// importNetwork loads a concrete network into the model as vertices and
// edges. Switch ports become frame indices verbatim; hosts resolve through
// the shared name table, which is where cross-map identification begins.
func importNetwork(model *Model, net *topology.Network) {
	local := make(map[topology.NodeID]*Vertex, net.NumNodes())
	// vertexFor returns the current root of the node's vertex and the shift
	// translating the node's port numbers into that root's frame (the
	// original vertex may have merged away during earlier deductions).
	vertexFor := func(id topology.NodeID) (*Vertex, int) {
		v, ok := local[id]
		if !ok {
			if net.KindOf(id) == topology.HostNode {
				v, _ = model.hostVertex(net.NameOf(id), nil)
			} else {
				v = model.newVertex(topology.SwitchNode, "", nil)
			}
			local[id] = v
		}
		return find(v)
	}
	net.WiresIndexed(func(_ int, w topology.Wire) {
		a, sa := vertexFor(w.A.Node)
		b, sb := vertexFor(w.B.Node)
		ai, bi := w.A.Port+sa, w.B.Port+sb
		if net.KindOf(w.A.Node) == topology.HostNode {
			ai = 0
		}
		if net.KindOf(w.B.Node) == topology.HostNode {
			bi = 0
		}
		model.addEdge(a, ai, b, bi)
		// Deductions may merge vertices mid-import; drain eagerly so the
		// next vertexFor resolves against up-to-date roots.
		model.processMerges()
	})
}
