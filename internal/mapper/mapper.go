package mapper

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// ReplicatePolicy selects what happens to pending exploration work when a
// vertex is discovered to be a replicate of an already-explored one.
type ReplicatePolicy uint8

const (
	// DedupFrontier skips exploration jobs whose vertex has merged into an
	// explored vertex — the behaviour implied by §3.3's object merging and
	// the probe-count economy of Fig 6.
	DedupFrontier ReplicatePolicy = iota
	// RetryUnknown re-explores merged vertices, but only the slots still
	// empty in the survivor's frame — the probes the survivor's route may
	// have lost to self-collisions. A middle ground between probe cost and
	// the label algorithm's exhaustiveness.
	RetryUnknown
	// ExploreAll explores every created vertex to the depth bound exactly
	// as the §3.1 label algorithm does. Maximum probes, maximum coverage.
	ExploreAll
)

// ProbeOrder selects which of the two §2.3 probe types is sent first for a
// candidate turn (the second is skipped when the first answers).
type ProbeOrder uint8

const (
	// HostFirst sends the host-probe first. Host responses are the merge
	// anchors, so this finds deductions as early as possible.
	HostFirst ProbeOrder = iota
	// SwitchFirst sends the loopback switch-probe first.
	SwitchFirst
)

// TurnOrder selects the order in which candidate turns are probed.
type TurnOrder uint8

const (
	// SmallTurnsFirst probes ±1, ∓1, ±2, ... — the paper's §3.3 heuristic:
	// "excluding turn 0, turns of +/-1 are the best, turns of +/-2 are the
	// next best, etc."
	SmallTurnsFirst TurnOrder = iota
	// NaiveScan probes −7..−1, +1..+7 in order (the ablation baseline).
	NaiveScan
)

// Config parameterises a mapping run.
type Config struct {
	// Depth is the maximum probe-string length ("SearchDepth"). The paper's
	// correctness bound is Q+D (§3.2.7); topology.DepthBound computes it
	// when the true network is available to the harness.
	Depth int
	// Policy controls replicate re-exploration (see ReplicatePolicy).
	Policy ReplicatePolicy
	// ProbeOrder controls host-versus-switch probe order per turn.
	ProbeOrder ProbeOrder
	// TurnOrder controls the turn exploration heuristic.
	TurnOrder TurnOrder
	// EliminateProbes enables §3.3's provably-safe probe elimination using
	// the feasible-port window. Disabling it is the ablation baseline.
	EliminateProbes bool
	// SkipKnownSlots suppresses probes for slots that already hold an edge.
	SkipKnownSlots bool
	// MaxVertices aborts pathological runs (0 = default 1<<20).
	MaxVertices int
	// MaxPorts is the largest switch radix the run plans for: it bounds
	// the candidate turn magnitudes and the feasible-port windows. Zero
	// discovers the value from the prober when it exposes MaxPorts()
	// (simnet transports do) and falls back to the paper's 8-port default
	// otherwise, so existing configurations behave identically.
	MaxPorts int
	// Snapshots enables the Fig 8 instrumentation: one Snapshot per switch
	// exploration.
	Snapshots bool
	// Cancel, when non-nil, is polled between explorations; returning true
	// aborts the run with ErrCanceled. The election mode (§4.2) uses it to
	// passivate a mapper that has heard from a higher-priority one.
	Cancel func() bool
	// Tracer, when non-nil, records the run onto the unified observability
	// layer: phase spans ("explore-phase", "explore", "prune", "sweep")
	// and one instant per TraceEvent, all under cat "mapper" (the
	// self-healing fault log additionally lands under cat "heal"). See
	// internal/obs.
	Tracer *obs.Tracer
	// Metrics, when non-nil, is the obs registry the run counts into
	// (names under "mapper.", see internal/obs) alongside the Stats
	// struct. The pipelined probe engine inherits it unless
	// Pipeline.Metrics is set explicitly.
	Metrics *obs.Registry
	// Pipeline configures the pipelined probe engine. With Window > 1 and a
	// transport that implements simnet.AsyncProber, the explorer prefetches
	// all independent probes of each frontier slot-window through a
	// simnet.ProbeWindow, overlapping their response timeouts; results are
	// applied by the unchanged serial deduction loop, so the produced map is
	// byte-identical to the serial one. Window <= 1 (the zero value) keeps
	// the strictly serial path.
	Pipeline simnet.WindowConfig
	// Confirm, when > 1, requires K-of-N probe confirmation before an edge
	// is committed to the model: a response that would create an edge must
	// be observed Confirm times within 2×Confirm−1 samples of the same
	// probe string, otherwise the turn is treated as "nothing". Values of 0
	// or 1 commit on the first response — the paper's quiescent behaviour,
	// byte-identical to historical runs.
	Confirm int
	// FaultBudget, when > 0, bounds the contradictions a run tolerates
	// before it stops exploring and reports a partial result (Sessions turn
	// that into Result.Partial rather than an error).
	FaultBudget int
	// SelfHeal enables contradiction-triggered incremental re-exploration:
	// a deduction that contradicts the committed model marks the vertices
	// involved stale and re-enqueues them for a scoped re-explore instead
	// of silently poisoning the model. Sessions set it; the plain Run path
	// leaves it off and stays byte-identical to historical behaviour.
	SelfHeal bool
}

// DefaultConfig returns the paper-faithful production configuration; the
// depth must still be set by the caller.
func DefaultConfig(depth int) Config {
	return Config{
		Depth:           depth,
		Policy:          DedupFrontier,
		ProbeOrder:      HostFirst,
		TurnOrder:       SmallTurnsFirst,
		EliminateProbes: true,
		SkipKnownSlots:  true,
	}
}

// Snapshot is one Fig 8 sample, taken after each switch exploration: "the
// number of nodes and edges in the model graph as well as the number of
// items on the frontier list were recorded after a frontier switch was
// explored. Hence time is in units of 'switch explorations'".
type Snapshot struct {
	Exploration int
	Vertices    int
	Edges       int
	Frontier    int
}

// Stats aggregates a run.
type Stats struct {
	Probes        simnet.Stats
	Explorations  int // frontier pops that actually probed
	SkippedJobs   int // frontier pops suppressed by the replicate policy
	Merges        int
	PrunedVerts   int
	Elapsed       time.Duration
	Inconsistent  int // contradictory deductions (nonzero only under noise)
	EliminatedPro int // probes skipped by the safe-elimination window
	// Contradictions counts deductions that disagreed with the committed
	// model during a self-healing run; Reexplored counts the scoped
	// re-explorations those contradictions (and verification sweeps)
	// scheduled. Both stay zero on the legacy quiescent path.
	Contradictions int
	Reexplored     int
	// Pipeline carries the probe-engine counters when Config.Pipeline
	// enabled the pipelined path.
	Pipeline simnet.WindowStats
}

// Map is the result of a mapping run.
type Map struct {
	// Network is the reconstructed topology. Host names are preserved;
	// switches are anonymous (named m0, m1, ... in creation order); port
	// numbers are consistent up to the per-switch rotation that Lemma 2
	// proves unobservable (routes depend only on port differences).
	Network *topology.Network
	// Mapper is the node id of the mapping host within Network.
	Mapper topology.NodeID
	Stats  Stats
	// Series is the Fig 8 instrumentation when Config.Snapshots was set.
	Series []Snapshot
}

// ErrDepthExceeded reports an invalid search-depth bound: a run configured
// without a positive Depth (see WithDepth).
var ErrDepthExceeded = errors.New("mapper: search depth bound invalid")

// ErrTooManyVertices reports a run aborted by Config.MaxVertices.
var ErrTooManyVertices = errors.New("mapper: model graph exceeded MaxVertices")

// ErrCanceled reports a run aborted by Config.Cancel (election passivation).
var ErrCanceled = errors.New("mapper: run canceled")

// job is one pending frontier exploration: a vertex reference plus the
// probe string that created it (the route this job's probes will extend).
// entry is the index, in v's own frame, of the port this route enters
// through — 0 for vertices created by the BFS itself; possibly other values
// for jobs seeded by the randomized hybrid, which re-enters known vertices
// over new routes.
type job struct {
	v     *Vertex
	route simnet.Route
	entry int
}

// run holds the state of one mapping run.
type run struct {
	cfg    Config
	p      simnet.Prober
	model  *Model
	front  []job
	stats  Stats
	series []Snapshot
	start  time.Duration
	// win is the pipelined probe engine (nil when disabled or unsupported
	// by the transport); ps streams the current exploration's probe pairs
	// through it, holding the responses collected so far indexed by
	// submission tag (no per-probe map traffic on the hot path). psPool is
	// the recycled stream state — its slices grow to the run's high-water
	// mark once and are reset, not reallocated, per exploration.
	win    *simnet.ProbeWindow
	ps     *exploreStream
	psPool exploreStream
	// Self-healing state (SelfHeal runs only): partial marks a run stopped
	// by an exhausted fault budget; obs is the mapper-side fault log;
	// staleCount bounds per-vertex re-explorations so a persistently lying
	// region cannot loop the run forever.
	partial    bool
	obs        []Observation
	staleCount map[*Vertex]int
	// m holds the run's pre-registered obs handles (nil handles when
	// Config.Metrics is nil — updates are then no-ops).
	m runMetrics
}

// runMetrics is the mapper's obs handle set, mirroring the Stats fields
// that describe deduction work (probe-engine counters live with the
// window; transport counters with the net).
type runMetrics struct {
	explorations   *obs.Counter
	merges         *obs.Counter
	pruned         *obs.Counter
	eliminated     *obs.Counter
	contradictions *obs.Counter
	reexplored     *obs.Counter
	exploreTime    *obs.Histogram
}

// registerRunMetrics resolves the run's handles in reg (nil reg hands out
// nil no-op handles).
func registerRunMetrics(reg *obs.Registry) runMetrics {
	return runMetrics{
		explorations:   reg.Counter("mapper.explorations"),
		merges:         reg.Counter("mapper.merges"),
		pruned:         reg.Counter("mapper.pruned"),
		eliminated:     reg.Counter("mapper.eliminated"),
		contradictions: reg.Counter("mapper.contradictions"),
		reexplored:     reg.Counter("mapper.reexplored"),
		exploreTime:    reg.Histogram("mapper.explore.time", obs.DefaultBuckets()),
	}
}

// staleLimit bounds how many times one vertex may be re-enqueued stale.
const staleLimit = 3

// RunConfig executes the Berkeley algorithm from the given prober with an
// explicit configuration. Most callers should use Run with options.
func RunConfig(p simnet.Prober, cfg Config) (*Map, error) {
	r, err := newRun(p, cfg)
	if err != nil {
		return nil, err
	}
	if err := r.runLoop(); err != nil {
		return nil, err
	}
	return r.finish()
}

// newRun validates the configuration and performs INITIALIZATION (§3.1):
// the root host-vertex for the mapper itself and its adjacent
// switch-vertex; the frontier starts with that switch.
func newRun(p simnet.Prober, cfg Config) (*run, error) {
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("mapper: Depth must be at least 1, got %d: %w", cfg.Depth, ErrDepthExceeded)
	}
	if cfg.MaxVertices == 0 {
		cfg.MaxVertices = 1 << 20
	}
	if err := resolveMaxPorts(&cfg, p); err != nil {
		return nil, err
	}
	r := &run{cfg: cfg, p: p, model: newModel(), m: registerRunMetrics(cfg.Metrics)}
	r.model.maxPorts = cfg.MaxPorts
	if cfg.SelfHeal {
		r.staleCount = make(map[*Vertex]int)
		r.model.onInconsistency = r.noteContradiction
	}
	r.initPipeline()
	r.start = p.Clock()

	h0, _ := r.model.hostVertex(p.LocalHost(), simnet.Route{})
	rootSwitch := r.model.newVertex(topology.SwitchNode, "", simnet.Route{})
	// The host's single wire is the switch's entry port, relative index 0.
	r.model.addEdge(h0, 0, rootSwitch, 0)
	r.front = append(r.front, job{v: rootSwitch, route: simnet.Route{}})
	return r, nil
}

// runLoop drains the frontier: EXPLORE + MERGE, interleaved per §3.3
// modification 1. A self-healing run whose contradictions exceed the fault
// budget stops early and marks the run partial instead of erroring.
func (r *run) runLoop() error {
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Begin("mapper", "explore-phase", r.p.Clock())
		defer func() { r.cfg.Tracer.End(r.p.Clock()) }()
	}
	for len(r.front) > 0 {
		if r.cfg.Cancel != nil && r.cfg.Cancel() {
			return ErrCanceled
		}
		if r.budgetExhausted() {
			r.partial = true
			r.observe("budget-exhausted", nil)
			r.front = r.front[:0]
			break
		}
		jb := r.front[0]
		r.front = r.front[1:]
		if err := r.explore(jb); err != nil {
			return err
		}
	}
	return nil
}

// budgetExhausted reports whether the configured fault budget is spent.
func (r *run) budgetExhausted() bool {
	return r.cfg.FaultBudget > 0 && r.stats.Contradictions > r.cfg.FaultBudget
}

// finish runs PRUNE (§3.1) — repeatedly delete switch-vertices of degree
// ≤ 1, removing both unexplored deep frontier leftovers and the replicated
// fringes of F — then snapshots the statistics and exports the model.
func (r *run) finish() (*Map, error) {
	r.prune()

	r.stats.Elapsed = r.p.Clock() - r.start
	if ns, ok := r.p.(interface{ Stats() simnet.Stats }); ok {
		r.stats.Probes = ns.Stats()
	}
	r.stats.Inconsistent = r.model.Inconsistencies
	r.finishPipeline()

	net, mapperID, err := r.export()
	if err != nil {
		return nil, err
	}
	return &Map{Network: net, Mapper: mapperID, Stats: r.stats, Series: r.series}, nil
}

// noteContradiction handles one contradictory deduction on a self-healing
// run: count it against the budget and mark both involved regions stale.
func (r *run) noteContradiction(a, b *Vertex) {
	r.stats.Contradictions++
	r.m.contradictions.Inc()
	r.observe("contradiction", nil)
	r.markStale(a)
	r.markStale(b)
}

// markStale flags a vertex for scoped incremental re-exploration: its
// explored bit is cleared and a fresh frontier job re-enqueued over its
// discovery route. Each vertex is re-enqueued at most staleLimit times so a
// persistently contradicting region degrades into suspect edges instead of
// an endless probe loop.
func (r *run) markStale(v *Vertex) {
	root, _ := find(v)
	if root.deleted || root.kind != topology.SwitchNode {
		return
	}
	if r.staleCount == nil || r.staleCount[root] >= staleLimit {
		return
	}
	r.staleCount[root]++
	root.explored = false
	r.stats.Reexplored++
	r.m.reexplored.Inc()
	r.observe("re-explore", root.probe)
	r.front = append(r.front, job{v: root, route: root.probe})
}

// turnSequence returns the candidate turns in configured order, bounded by
// the configured switch radix (turn magnitudes up to MaxPorts-1).
func (r *run) turnSequence() []simnet.Turn {
	maxTurn := r.cfg.MaxPorts - 1
	var out []simnet.Turn
	switch r.cfg.TurnOrder {
	case SmallTurnsFirst:
		for mag := 1; mag <= maxTurn; mag++ {
			out = append(out, simnet.Turn(mag), simnet.Turn(-mag))
		}
	default: // NaiveScan
		for t := -maxTurn; t <= maxTurn; t++ {
			if t != 0 {
				out = append(out, simnet.Turn(t))
			}
		}
	}
	return out
}

// proberMaxPorts discovers the largest port count of the fabric behind p,
// for transports that expose it (simnet endpoints do); the paper's 8-port
// default applies otherwise.
func proberMaxPorts(p any) int {
	if mp, ok := p.(interface{ MaxPorts() int }); ok {
		if m := mp.MaxPorts(); m > 0 {
			return m
		}
	}
	return topology.SwitchPorts
}

// resolveMaxPorts fills a zero Config.MaxPorts from the prober and bounds
// the result to representable radices.
func resolveMaxPorts(cfg *Config, p any) error {
	if cfg.MaxPorts == 0 {
		cfg.MaxPorts = proberMaxPorts(p)
	}
	if cfg.MaxPorts < 2 || cfg.MaxPorts > topology.MaxSwitchRadix {
		return fmt.Errorf("mapper: MaxPorts %d outside [2, %d]", cfg.MaxPorts, topology.MaxSwitchRadix)
	}
	return nil
}

// explore pops one job: probes every candidate turn out of the switch the
// job's route reaches, creating vertices and edges for the responses and
// draining the merge list after each discovery.
func (r *run) explore(jb job) error {
	root, shift := find(jb.v)
	if root.kind != topology.SwitchNode {
		return nil // merged into a host vertex under noise; nothing to do
	}
	switch r.cfg.Policy {
	case DedupFrontier:
		if root.explored {
			r.stats.SkippedJobs++
			return nil
		}
	case RetryUnknown, ExploreAll:
		// Proceed; RetryUnknown filters per-slot below.
	}
	if len(jb.route) >= r.cfg.Depth {
		return nil // beyond SearchDepth: vertex stays, unexplored
	}
	retryOnly := r.cfg.Policy == RetryUnknown && root.explored

	began := r.p.Clock()
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Begin("mapper", "explore", began,
			obs.Int("vertex", root.id), obs.String("route", jb.route.String()))
		defer func() { r.cfg.Tracer.End(r.p.Clock()) }()
	}
	entry := jb.entry + shift // frame index of this route's entry port
	r.beginStream(jb, r.turnSequence(), retryOnly)
	for ti, t := range r.turnSequence() {
		idx := entry + int(t)
		if r.cfg.EliminateProbes {
			lo, hi := r.model.window(root)
			if !r.model.feasible(idx, lo, hi) {
				r.stats.EliminatedPro++
				r.m.eliminated.Inc()
				continue
			}
		}
		if root.occupied(idx) && (r.cfg.SkipKnownSlots || retryOnly) {
			continue
		}
		resp, probeStr := r.pairAt(root, entry, ti, jb.route, t)
		if r.tracing() {
			desc := resp.Kind.String()
			if resp.Kind == simnet.RespHost {
				desc = "host:" + resp.Host
			}
			r.emit(TraceEvent{Kind: TraceProbe, Probe: probeStr, Response: desc})
		}
		switch resp.Kind {
		case simnet.RespNothing:
			continue
		case simnet.RespHost:
			hv, created := r.model.hostVertex(resp.Host, probeStr)
			// Host side is always the host's single port, index 0.
			r.model.addEdge(root, idx, hv, 0)
			if created {
				r.emit(TraceEvent{Kind: TraceDiscover, Vertex: hv.id, Probe: probeStr})
			}
		case simnet.RespSwitch:
			w := r.model.newVertex(topology.SwitchNode, "", probeStr)
			if r.model.nextID > r.cfg.MaxVertices {
				return ErrTooManyVertices
			}
			// The new vertex's frame is anchored at its entry port: the
			// wire back toward the mapper is its relative index 0.
			r.model.addEdge(root, idx, w, 0)
			r.front = append(r.front, job{v: w, route: probeStr})
			r.emit(TraceEvent{Kind: TraceDiscover, Vertex: w.id, Probe: probeStr})
		}
		before := r.model.liveVerts
		if r.tracing() {
			r.model.onMerge = func(into, victim, shift int) {
				r.emit(TraceEvent{Kind: TraceMerge, Vertex: into, Other: victim, Shift: shift})
			}
		}
		r.model.processMerges()
		r.stats.Merges += before - r.model.liveVerts
		r.m.merges.Add(int64(before - r.model.liveVerts))
		// Re-resolve: the vertex we are exploring may itself have merged.
		newRoot, newShift := find(jb.v)
		if newRoot != root {
			root, shift = newRoot, newShift
			entry = jb.entry + shift
			if r.cfg.Policy == DedupFrontier && root.explored {
				break
			}
		}
	}
	root.explored = true
	r.endStream()
	r.emit(TraceEvent{Kind: TraceExplore, Vertex: root.id})
	r.stats.Explorations++
	r.m.explorations.Inc()
	r.m.exploreTime.Observe(r.p.Clock() - began)
	if r.cfg.Snapshots {
		r.series = append(r.series, Snapshot{
			Exploration: r.stats.Explorations,
			Vertices:    r.model.NumVertices(),
			Edges:       r.model.NumEdges(),
			Frontier:    len(r.front),
		})
	}
	return nil
}

// pairAt resolves the probe pair for the candidate turn t at index ti of
// the turn sequence, returning the response and the probed route
// (base extended by t). A response prefetched by the pipelined engine is
// consumed instead of probing live — reusing the stream's already-built
// route; candidates the prefetch did not cover (possible when a
// mid-exploration merge rewrites the frontier vertex) fall back to the
// serial probes, so the deduction sequence never depends on the pipeline.
func (r *run) pairAt(root *Vertex, entry int, ti int, base simnet.Route, t simnet.Turn) (simnet.ProbeResponse, simnet.Route) {
	if ps := r.ps; ps != nil {
		r.streamWant(root, entry, ti)
		if tag := ps.tiTag[ti] - 1; tag >= 0 && ps.done[tag] && !ps.used[tag] {
			ps.used[tag] = true
			s := ps.routes[tag]
			return r.confirmResponse(s, ps.resp[tag]), s
		}
	}
	s := base.Extend(t)
	return r.probePair(s), s
}

// probePair issues one live probe pair for route s, applying the configured
// probe order and skipping the second probe when the first answers.
func (r *run) probePair(s simnet.Route) simnet.ProbeResponse {
	return r.confirmResponse(s, r.probeOnce(s))
}

// probeOnce issues one live probe pair in the configured order.
func (r *run) probeOnce(s simnet.Route) simnet.ProbeResponse {
	if r.cfg.ProbeOrder == SwitchFirst {
		if r.p.SwitchProbe(s) {
			return simnet.ProbeResponse{Kind: simnet.RespSwitch}
		}
		if host, ok := r.p.HostProbe(s); ok {
			return simnet.ProbeResponse{Kind: simnet.RespHost, Host: host}
		}
		return simnet.ProbeResponse{Kind: simnet.RespNothing}
	}
	if host, ok := r.p.HostProbe(s); ok {
		return simnet.ProbeResponse{Kind: simnet.RespHost, Host: host}
	}
	if r.p.SwitchProbe(s) {
		return simnet.ProbeResponse{Kind: simnet.RespSwitch}
	}
	return simnet.ProbeResponse{Kind: simnet.RespNothing}
}

// confirmResponse implements K-of-N commit confirmation (Config.Confirm):
// a response that would create an edge must be reproduced Confirm times
// within 2×Confirm−1 samples of the same probe string before it is
// believed, otherwise the slot is treated as "nothing" this round. Null
// responses are never confirmed — a lost probe only delays discovery, it
// cannot forge an edge. With Confirm <= 1 the first response wins, exactly
// as before.
func (r *run) confirmResponse(s simnet.Route, first simnet.ProbeResponse) simnet.ProbeResponse {
	k := r.cfg.Confirm
	if k <= 1 || first.Kind == simnet.RespNothing {
		return first
	}
	votes := make(map[simnet.ProbeResponse]int, 2)
	votes[first] = 1
	for samples := 1; samples < 2*k-1; samples++ {
		resp := r.probeOnce(s)
		votes[resp]++
		if votes[resp] >= k {
			return resp
		}
	}
	return simnet.ProbeResponse{Kind: simnet.RespNothing}
}

// prune implements the PRUNE stage: "For each vertex v, if v.kind = switch
// and degree(v) = 1, delete" — repeated until stable. Degree-0 switches
// (fully disconnected by earlier deletions) are removed as well.
func (r *run) prune() {
	if r.tracing() {
		r.model.onDelete = func(id int) {
			r.emit(TraceEvent{Kind: TracePrune, Vertex: id})
		}
	}
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Begin("mapper", "prune", r.p.Clock())
		defer func() { r.cfg.Tracer.End(r.p.Clock()) }()
	}
	pruned := r.model.prune(r.p.LocalHost())
	r.stats.PrunedVerts += pruned
	r.m.pruned.Add(int64(pruned))
	// Final snapshot after the prune, mirroring Fig 8's plummet.
	if r.cfg.Snapshots {
		r.series = append(r.series, Snapshot{
			Exploration: r.stats.Explorations + 1,
			Vertices:    r.model.NumVertices(),
			Edges:       r.model.NumEdges(),
			Frontier:    0,
		})
	}
}

// prune removes degree<=1 switch vertices repeatedly, then host vertices
// stranded by the deletions (keepHost survives regardless). It returns the
// number of vertices deleted.
func (m *Model) prune(keepHost string) int {
	pruned := 0
	for {
		deleted := false
		for _, v := range m.verts {
			if !v.deleted && v.kind == topology.SwitchNode && m.degree(v) <= 1 {
				m.deleteVertex(v)
				pruned++
				deleted = true
			}
		}
		if !deleted {
			break
		}
	}
	for _, v := range m.verts {
		if !v.deleted && v.kind == topology.HostNode && m.degree(v) == 0 && v.name != keepHost {
			m.deleteVertex(v)
			pruned++
		}
	}
	return pruned
}

// export converts the model graph into a topology.Network.
func (r *run) export() (*topology.Network, topology.NodeID, error) {
	return exportModel(r.model, r.p.LocalHost())
}

// exportModel converts a model graph into a topology.Network. Relative slot
// indices become concrete ports via the feasible window (any choice inside
// the window yields identical relative routes; Lemma 2). The returned node
// id is the vertex whose host name is localHost.
func exportModel(model *Model, localHost string) (*topology.Network, topology.NodeID, error) {
	net := &topology.Network{}
	ids := make(map[*Vertex]topology.NodeID)
	swCount := 0
	for _, v := range model.liveVertices() {
		if v.kind == topology.HostNode {
			ids[v] = net.AddHost(v.name)
		} else {
			// Model switches carry the radix the run planned for; on the
			// paper's 8-port fabrics this is exactly AddSwitch.
			ids[v] = net.AddSwitchRadix(fmt.Sprintf("m%d", swCount), model.maxPorts)
			swCount++
		}
	}
	// Port assignment: place index i at port i+p0 with p0 = lo (the lowest
	// feasible offset).
	portOf := make(map[*Vertex]int) // cached p0 per vertex
	base := func(v *Vertex) int {
		if p0, ok := portOf[v]; ok {
			return p0
		}
		lo, hi := model.window(v)
		if lo > hi {
			lo = 0 // inconsistent window (possible only under noise)
		}
		portOf[v] = lo
		return lo
	}
	seen := make(map[*Edge]bool)
	var slotIdx []int
	for _, v := range model.liveVertices() {
		// Walk slots in sorted index order: wire creation order (and with it
		// the exported byte stream) must not depend on map iteration order.
		slotIdx = slotIdx[:0]
		for i := range v.slots {
			slotIdx = append(slotIdx, i)
		}
		sort.Ints(slotIdx)
		for _, i := range slotIdx {
			for _, e := range v.slots[i] {
				if e.deleted || seen[e] {
					continue
				}
				seen[e] = true
				pa, pb := e.ai, e.bi
				if e.a.kind == topology.SwitchNode {
					pa += base(e.a)
				} else {
					pa = 0
				}
				if e.b.kind == topology.SwitchNode {
					pb += base(e.b)
				} else {
					pb = 0
				}
				if e.a == e.b && pa == pb {
					// A port deduced to be cabled to itself is a loopback
					// plug: probes out of it re-entered through it, and the
					// merge machinery collapsed the apparent far switch
					// onto this one at the same index.
					if err := net.AddReflector(ids[e.a], pa); err != nil {
						return nil, 0, fmt.Errorf("mapper: export reflector: %w", err)
					}
					continue
				}
				if _, err := net.Connect(ids[e.a], pa, ids[e.b], pb); err != nil {
					return nil, 0, fmt.Errorf("mapper: export: %w", err)
				}
			}
		}
	}
	mapperID := net.Lookup(localHost)
	if mapperID == topology.None {
		return nil, 0, errors.New("mapper: mapping host missing from its own map")
	}
	return net, mapperID, nil
}
