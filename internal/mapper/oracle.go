package mapper

import (
	"fmt"
	"sort"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// OracleRun maps a network whose switches are self-identifying — the §6
// hardware extension: "if a probe made it to a switch and back, it would
// carry a unique identifier and the exploration process would be simpler."
// With identities (and the stamped entry port) the model graph is exact on
// first contact: no replicates ever exist, no merge machinery runs, and the
// probe budget collapses to at most two probes per switch port. The
// comparison against the Berkeley algorithm (BenchmarkOracleVsBerkeley)
// quantifies what the anonymous-switch problem costs; the paper's caveat —
// that self-identification alone still does not solve mapping under
// cross-traffic — stands, since the oracle changes nothing about probe
// loss.
//
// Unlike the Berkeley algorithm, the oracle mapper has no prune stage and
// therefore maps hostless switch-bridge regions too (its output is
// isomorphic to all of N, not N−F).
func OracleRun(p simnet.IDProber, depth int) (*Map, error) {
	if depth < 1 {
		return nil, fmt.Errorf("mapper: depth must be >= 1, got %d: %w", depth, ErrDepthExceeded)
	}
	start := p.Clock()
	stats := Stats{}
	maxPorts := proberMaxPorts(p)

	type oswitch struct {
		id    int
		node  topology.NodeID // id in the output network
		entry int             // absolute entry port of the discovery route
		route simnet.Route
	}
	net := &topology.Network{}
	mapperID := net.AddHost(p.LocalHost())
	hosts := map[string]topology.NodeID{p.LocalHost(): mapperID}
	seen := map[int]*oswitch{}
	type edgeKey struct{ a, pa, b, pb int }
	edges := map[edgeKey]bool{}
	addEdge := func(aID, pa, bID, pb int) {
		k := edgeKey{aID, pa, bID, pb}
		if aID > bID || (aID == bID && pa > pb) {
			k = edgeKey{bID, pb, aID, pa}
		}
		edges[k] = true
	}
	hostEdges := map[string][2]int{} // host name -> (switch oracle id, port)

	// The root switch: the empty prefix parks on the mapper's own switch.
	rootID, rootEntry, ok := p.IDProbe(simnet.Route{})
	if !ok {
		return nil, fmt.Errorf("mapper: oracle cannot reach the first switch")
	}
	root := &oswitch{id: rootID, node: net.AddSwitchRadix(fmt.Sprintf("o%d", rootID), maxPorts),
		entry: rootEntry, route: simnet.Route{}}
	seen[rootID] = root
	hostEdges[p.LocalHost()] = [2]int{rootID, rootEntry}

	frontier := []*oswitch{root}
	for len(frontier) > 0 {
		sw := frontier[0]
		frontier = frontier[1:]
		stats.Explorations++
		if len(sw.route) >= depth {
			continue
		}
		for port := 0; port < maxPorts; port++ {
			if port == sw.entry {
				continue // the wire we came in on is already recorded
			}
			t := simnet.Turn(port - sw.entry)
			probe := sw.route.Extend(t)
			if host, ok := p.HostProbe(probe); ok {
				if _, dup := hosts[host]; !dup {
					hosts[host] = net.AddHost(host)
				}
				hostEdges[host] = [2]int{sw.id, port}
				continue
			}
			id, entry, ok := p.IDProbe(probe)
			if !ok {
				continue
			}
			other, known := seen[id]
			if !known {
				other = &oswitch{id: id, node: net.AddSwitchRadix(fmt.Sprintf("o%d", id), maxPorts),
					entry: entry, route: probe}
				seen[id] = other
				frontier = append(frontier, other)
			}
			addEdge(sw.id, port, id, entry)
		}
	}

	// Assemble wires (ports are absolute — the oracle stamps them).
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.a != b.a {
			return a.a < b.a
		}
		if a.pa != b.pa {
			return a.pa < b.pa
		}
		if a.b != b.b {
			return a.b < b.b
		}
		return a.pb < b.pb
	})
	for _, k := range keys {
		if k.a == k.b && k.pa == k.pb {
			if err := net.AddReflector(seen[k.a].node, k.pa); err != nil {
				return nil, fmt.Errorf("mapper: oracle reflector: %w", err)
			}
			continue
		}
		if _, err := net.Connect(seen[k.a].node, k.pa, seen[k.b].node, k.pb); err != nil {
			return nil, fmt.Errorf("mapper: oracle wire: %w", err)
		}
	}
	hostNames := make([]string, 0, len(hostEdges))
	for name := range hostEdges {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)
	for _, name := range hostNames {
		he := hostEdges[name]
		if _, err := net.Connect(hosts[name], topology.HostPort, seen[he[0]].node, he[1]); err != nil {
			return nil, fmt.Errorf("mapper: oracle host wire: %w", err)
		}
	}

	stats.Elapsed = p.Clock() - start
	if ns, ok := p.(interface{ Stats() simnet.Stats }); ok {
		stats.Probes = ns.Stats()
	}
	return &Map{Network: net, Mapper: mapperID, Stats: stats}, nil
}
