package mapper

import (
	"sanmap/internal/obs"
	"sanmap/internal/simnet"
)

// Option mutates a Config; Run applies options over the paper-faithful
// defaults (DefaultConfig). The functional-options constructor replaces the
// historical DefaultConfig(depth)-plus-field-pokes idiom at call sites;
// Config itself remains exported for programmatic composition (election,
// workload) through RunConfig.
type Option func(*Config)

// WithDepth sets the maximum probe-string length ("SearchDepth"). Required:
// a run without a depth fails with ErrDepthExceeded.
func WithDepth(d int) Option { return func(c *Config) { c.Depth = d } }

// WithPolicy sets the replicate re-exploration policy.
func WithPolicy(p ReplicatePolicy) Option { return func(c *Config) { c.Policy = p } }

// WithProbeOrder sets host-versus-switch probe order per candidate turn.
func WithProbeOrder(o ProbeOrder) Option { return func(c *Config) { c.ProbeOrder = o } }

// WithTurnOrder sets the turn exploration heuristic.
func WithTurnOrder(o TurnOrder) Option { return func(c *Config) { c.TurnOrder = o } }

// WithEliminateProbes toggles §3.3's provably-safe probe elimination.
func WithEliminateProbes(on bool) Option { return func(c *Config) { c.EliminateProbes = on } }

// WithSkipKnownSlots toggles suppression of probes for occupied slots.
func WithSkipKnownSlots(on bool) Option { return func(c *Config) { c.SkipKnownSlots = on } }

// WithMaxVertices bounds the model graph (0 = default 1<<20).
func WithMaxVertices(n int) Option { return func(c *Config) { c.MaxVertices = n } }

// WithSnapshots enables the Fig 8 per-exploration instrumentation.
func WithSnapshots(on bool) Option { return func(c *Config) { c.Snapshots = on } }

// WithCancel installs the between-explorations cancellation poll.
func WithCancel(f func() bool) Option { return func(c *Config) { c.Cancel = f } }

// WithTracer records the run onto an obs.Tracer: phase spans plus one
// instant per trace event (see Config.Tracer).
func WithTracer(t *obs.Tracer) Option { return func(c *Config) { c.Tracer = t } }

// WithMetrics counts the run into an obs.Registry alongside Stats (see
// Config.Metrics).
func WithMetrics(reg *obs.Registry) Option { return func(c *Config) { c.Metrics = reg } }

// WithPipeline enables the pipelined probe engine with the given in-flight
// window and the response cache on. A window of 1 or less keeps the serial
// path (byte-identical to the historical transcript); use
// WithPipelineConfig for full control over retry, timeout and caching.
func WithPipeline(window int) Option {
	return func(c *Config) {
		c.Pipeline = simnet.WindowConfig{Window: window, Cache: true}
	}
}

// WithPipelineConfig sets the full pipelined-engine configuration.
func WithPipelineConfig(wc simnet.WindowConfig) Option {
	return func(c *Config) { c.Pipeline = wc }
}

// WithConfirm sets K-of-N probe confirmation: an edge-creating response
// must repeat k times within 2k−1 samples before it is believed. k <= 1
// keeps the single-shot quiescent behaviour.
func WithConfirm(k int) Option { return func(c *Config) { c.Confirm = k } }

// WithFaultBudget bounds the contradictions a run tolerates before it stops
// exploring and reports a partial result (0 = unbounded).
func WithFaultBudget(n int) Option { return func(c *Config) { c.FaultBudget = n } }

// WithSelfHeal toggles contradiction-triggered incremental re-exploration.
// NewSession turns it on by default.
func WithSelfHeal(on bool) Option { return func(c *Config) { c.SelfHeal = on } }

// WithConfig replaces the whole configuration (a migration aid for callers
// that assemble a Config programmatically); options after it still apply.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// BuildConfig resolves options over the defaults.
func BuildConfig(opts ...Option) Config {
	cfg := DefaultConfig(0)
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// Run executes the Berkeley algorithm from the given prober with the
// paper-faithful defaults plus the supplied options:
//
//	m, err := mapper.Run(p, mapper.WithDepth(d), mapper.WithPipeline(8))
func Run(p simnet.Prober, opts ...Option) (*Map, error) {
	return RunConfig(p, BuildConfig(opts...))
}
