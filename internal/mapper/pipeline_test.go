package mapper

import (
	"bytes"
	"math/rand"
	"testing"

	"sanmap/internal/cluster"
	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// exportBytes is the byte-identity oracle: the canonical text export of a
// mapped network.
func exportBytes(t *testing.T, m *Map) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Network.Write(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// mapC runs the Berkeley mapper on subcluster C with the given extra
// options.
func mapC(t *testing.T, extra ...Option) *Map {
	t.Helper()
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	sn := simnet.NewDefault(sys.Net)
	opts := append([]Option{WithDepth(sys.Net.DepthBound(h0))}, extra...)
	m, err := Run(sn.Endpoint(h0), opts...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := isomorph.MustEqualCore(m.Network, sys.Net); err != nil {
		t.Fatalf("map not isomorphic to N−F: %v", err)
	}
	return m
}

// TestPipelinedMapDeterministic: mapping C ten times through the pipelined
// engine yields byte-identical exports, each identical to the serial map
// and isomorphic to the real network, in strictly less virtual time.
func TestPipelinedMapDeterministic(t *testing.T) {
	serial := mapC(t)
	want := exportBytes(t, serial)
	for i := 0; i < 10; i++ {
		m := mapC(t, WithPipeline(8))
		if got := exportBytes(t, m); !bytes.Equal(got, want) {
			t.Fatalf("run %d: pipelined export differs from serial:\n%s\nvs\n%s",
				i, got, want)
		}
		if m.Stats.Elapsed >= serial.Stats.Elapsed {
			t.Errorf("run %d: pipelined map not faster: %v vs serial %v",
				i, m.Stats.Elapsed, serial.Stats.Elapsed)
		}
		if ps := m.Stats.Pipeline; ps.Submitted == 0 || ps.MaxInFlight < 2 {
			t.Errorf("run %d: engine idle: %+v", i, ps)
		}
	}
}

// TestPipelineWindowOneIsSerial: window 1 degrades to the exact serial run —
// same bytes, same probe counters, same virtual clock.
func TestPipelineWindowOneIsSerial(t *testing.T) {
	serial := mapC(t)
	w1 := mapC(t, WithPipeline(1))
	if !bytes.Equal(exportBytes(t, serial), exportBytes(t, w1)) {
		t.Error("window=1 export differs from serial")
	}
	if serial.Stats.Probes != w1.Stats.Probes {
		t.Errorf("window=1 probe counters differ: %+v vs %+v",
			w1.Stats.Probes, serial.Stats.Probes)
	}
	if serial.Stats.Elapsed != w1.Stats.Elapsed {
		t.Errorf("window=1 elapsed differs: %v vs %v",
			w1.Stats.Elapsed, serial.Stats.Elapsed)
	}
}

// TestPipelinedMapFamilies: Theorem 1 plus byte-identity hold with the
// engine active across the isomorph-checked topology families.
func TestPipelinedMapFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	nets := []struct {
		name string
		net  *topology.Network
	}{
		{"star", topology.MustStar(4, 3, rng)},
		{"mesh", topology.MustMesh(3, 3, 2, rng)},
		{"torus", topology.MustTorus(3, 3, 2, rng)},
		{"hypercube", topology.MustHypercube(3, 2, rng)},
		{"fattree", topology.MustRandomConnected(5, 7, 2, rng)},
	}
	for _, tc := range nets {
		net := tc.net
		t.Run(tc.name, func(t *testing.T) {
			serial := mapAndVerify(t, net, simnet.CircuitModel, nil)
			piped := mapAndVerify(t, net, simnet.CircuitModel, WithPipeline(8))
			if !bytes.Equal(exportBytes(t, serial), exportBytes(t, piped)) {
				t.Error("pipelined export differs from serial")
			}
		})
	}
}

// TestPipelinedSpeedupCAB: the acceptance ratio — the full 100-node system
// maps at least twice as fast (virtual time) with window 8 as serially.
func TestPipelinedSpeedupCAB(t *testing.T) {
	sys := cluster.CABConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	run := func(extra ...Option) *Map {
		sn := simnet.NewDefault(sys.Net)
		opts := append([]Option{WithDepth(depth)}, extra...)
		m, err := Run(sn.Endpoint(h0), opts...)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m
	}
	serial := run()
	piped := run(WithPipeline(8))
	if !bytes.Equal(exportBytes(t, serial), exportBytes(t, piped)) {
		t.Error("pipelined C+A+B export differs from serial")
	}
	ratio := float64(serial.Stats.Elapsed) / float64(piped.Stats.Elapsed)
	if ratio < 2 {
		t.Errorf("pipelined speedup %.2fx, want >= 2x (serial %v, pipelined %v, engine %s)",
			ratio, serial.Stats.Elapsed, piped.Stats.Elapsed, piped.Stats.Pipeline)
	}
	t.Logf("C+A+B: serial %v, window=8 %v (%.2fx), engine %s",
		serial.Stats.Elapsed, piped.Stats.Elapsed, ratio, piped.Stats.Pipeline)
}

// TestPipelinedRandomizedRun: the §6 hybrid batches its coupon probes
// through the engine without changing the resulting map.
func TestPipelinedRandomizedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := topology.MustHypercube(3, 2, rng)
	h0 := net.Hosts()[0]
	run := func(pipe simnet.WindowConfig) *Map {
		sn := simnet.NewDefault(net)
		cfg := DefaultConfig(net.DepthBound(h0))
		cfg.Pipeline = pipe
		m, err := RandomizedRun(sn.Endpoint(h0), RandomizedConfig{
			Config:       cfg,
			CouponProbes: 64,
			Rng:          rand.New(rand.NewSource(42)),
		})
		if err != nil {
			t.Fatalf("RandomizedRun: %v", err)
		}
		if err := isomorph.MustEqualCore(m.Network, net); err != nil {
			t.Fatalf("hybrid map: %v", err)
		}
		return m
	}
	serial := run(simnet.WindowConfig{})
	piped := run(simnet.WindowConfig{Window: 8, Cache: true})
	if !bytes.Equal(exportBytes(t, serial), exportBytes(t, piped)) {
		t.Error("pipelined hybrid export differs from serial")
	}
	if piped.Stats.Elapsed >= serial.Stats.Elapsed {
		t.Errorf("pipelined hybrid not faster: %v vs %v",
			piped.Stats.Elapsed, serial.Stats.Elapsed)
	}
}
