package mapper

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// StepKind classifies the resumable boundaries a Session reaches.
type StepKind uint8

const (
	// StepMap fires once when Map's frontier drains, before the result is
	// assembled — the last point at which the initial exploration can be
	// checkpointed.
	StepMap StepKind = iota
	// StepSweep fires after each Remap verification sweep, with the
	// re-explore frontier enqueued but not yet probed.
	StepSweep
	// StepExplore fires after each Remap round's explore drain.
	StepExplore
)

// String names the step kind (the WAL record grammar uses these).
func (k StepKind) String() string {
	switch k {
	case StepMap:
		return "map"
	case StepSweep:
		return "sweep"
	case StepExplore:
		return "explore"
	}
	return fmt.Sprintf("step(%d)", uint8(k))
}

// Step describes one resumable boundary: which phase completed, the heal
// round it belongs to, and how many edges that round's sweep dropped.
type Step struct {
	Kind    StepKind
	Round   int
	Dropped int
}

// ErrSuspended is the cooperative-suspend sentinel: a step hook returns it
// (possibly wrapped) to abort Map/Remap at a checkpointable boundary. The
// session stays intact — Checkpoint still works, and calling Map/Remap
// again continues from the suspended position.
var ErrSuspended = errors.New("mapper: session suspended by step hook")

// ErrUncheckpointable reports a session whose configuration carries state
// the checkpoint format cannot capture (pipelined probe window, response
// cache, per-route retry budgets, Fig 8 snapshot series).
var ErrUncheckpointable = errors.New("mapper: session configuration not checkpointable")

// ErrCheckpointMismatch reports a checkpoint restored under a different
// configuration than the one that wrote it.
var ErrCheckpointMismatch = errors.New("mapper: checkpoint does not match session configuration")

// ErrBadCheckpoint reports a syntactically invalid or truncated checkpoint.
var ErrBadCheckpoint = errors.New("mapper: malformed checkpoint")

// OnStep installs the step observer (nil uninstalls). The hook fires after
// every completed phase — see Step — at a point where Checkpoint captures
// an exactly-resumable state; an error return aborts the surrounding
// Map/Remap call with the hook's error wrapped, leaving the session
// checkpointable. Daemons use the hook to append WAL records; tests use it
// with ErrSuspended to cut a run at every boundary.
func (s *Session) OnStep(f func(Step) error) { s.hook = f }

func (s *Session) emitStep(k StepKind) error {
	if s.hook == nil {
		return nil
	}
	if err := s.hook(Step{Kind: k, Round: s.heal.round, Dropped: s.heal.dropped}); err != nil {
		return fmt.Errorf("mapper: step hook at %v: %w", k, err)
	}
	return nil
}

// checkpointMagic versions the serialized session format.
const checkpointMagic = "sanmap-checkpoint 1"

// checkpointable rejects configurations whose probe-engine state the text
// format cannot capture: the pipelined window and its cache carry answers
// across calls, route budgets carry spend maps, and the Fig 8 series is
// analysis-only. The serial self-healing path — what a serving daemon
// runs — has no such state.
func checkpointable(cfg Config) error {
	switch {
	case cfg.Pipeline.Window > 1:
		return fmt.Errorf("%w: pipelined window %d", ErrUncheckpointable, cfg.Pipeline.Window)
	case cfg.Pipeline.Cache:
		return fmt.Errorf("%w: response cache enabled", ErrUncheckpointable)
	case cfg.Pipeline.RouteBudget > 0:
		return fmt.Errorf("%w: per-route retry budget", ErrUncheckpointable)
	case cfg.Snapshots:
		return fmt.Errorf("%w: snapshot series enabled", ErrUncheckpointable)
	}
	return nil
}

// configLine renders the fields a restore must agree on.
func configLine(cfg Config) string {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("config %d %d %d %d %d %d %d %d %d",
		cfg.Depth, cfg.MaxPorts, cfg.Confirm, cfg.FaultBudget,
		cfg.Policy, cfg.ProbeOrder, cfg.TurnOrder,
		b2i(cfg.EliminateProbes), b2i(cfg.SkipKnownSlots))
}

// Checkpoint serializes the session — model graph, heal position, pending
// re-explore frontier, staleness caps, statistics and fault log — into a
// self-contained text image. Restoring the image into a fresh process with
// RestoreSession and calling Remap continues the interrupted run: against
// the same network state it issues exactly the probes the uninterrupted
// run would have issued from this boundary (monotone progress). Call it
// from an OnStep hook or between Map/Remap calls; mid-explore state is not
// capturable by design.
func (s *Session) Checkpoint() ([]byte, error) {
	r := s.r
	if err := checkpointable(r.cfg); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	fmt.Fprintln(w, checkpointMagic)
	fmt.Fprintln(w, configLine(r.cfg))
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "heal %d %d %d %d %d\n",
		s.heal.round, b2i(s.heal.sweepDone), s.heal.dropped, b2i(s.heal.done), b2i(r.partial))
	fmt.Fprintf(w, "stats %d %d %d %d %d %d %d %d\n",
		r.stats.Explorations, r.stats.SkippedJobs, r.stats.Merges, r.stats.PrunedVerts,
		r.stats.Inconsistent, r.stats.EliminatedPro, r.stats.Contradictions, r.stats.Reexplored)
	m := r.model
	fmt.Fprintf(w, "model %d %d\n", m.nextID, m.Inconsistencies)

	live := m.liveVertices()
	fmt.Fprintf(w, "verts %d\n", len(live))
	for _, v := range live {
		kind := "s"
		if v.kind == topology.HostNode {
			kind = "h"
		}
		// The port-window memo is part of the observable state: dropEdge
		// leaves editGen alone, so a window narrowed by a since-dropped
		// edge keeps constraining probe elimination and the export base
		// until the next structural edit. Serialize the cache verbatim
		// (valid-flag, lo, hi) so a restored session bases ports — and
		// eliminates probes — exactly like the uninterrupted one.
		wc, wlo, whi := 0, 0, 0
		if v.winGen == m.editGen {
			wc, wlo, whi = 1, v.winLo, v.winHi
		}
		fmt.Fprintf(w, "v %d %s %d %d %d %d %q %q\n",
			v.id, kind, b2i(v.explored), wc, wlo, whi, v.name, v.probe.String())
	}

	// Edges are enumerated once, in the deterministic walk order the
	// exporters use (vertex creation order, sorted slots, slot-list
	// order); the slot lines then record, per (vertex, slot), the indices
	// into that enumeration in list order. List order is semantic: the
	// tolerant exporter trusts the oldest deduction in a conflicted slot.
	edgeIdx := make(map[*Edge]int)
	var edges []*Edge
	type slotLine struct {
		vid, slot int
		refs      []int
	}
	var slots []slotLine
	var slotKeys []int
	for _, v := range live {
		slotKeys = slotKeys[:0]
		for i := range v.slots {
			slotKeys = append(slotKeys, i)
		}
		sort.Ints(slotKeys)
		for _, i := range slotKeys {
			var refs []int
			for _, e := range v.slots[i] {
				if e.deleted {
					continue
				}
				idx, ok := edgeIdx[e]
				if !ok {
					idx = len(edges)
					edgeIdx[e] = idx
					edges = append(edges, e)
				}
				refs = append(refs, idx)
			}
			if len(refs) > 0 {
				slots = append(slots, slotLine{vid: v.id, slot: i, refs: refs})
			}
		}
	}
	fmt.Fprintf(w, "edges %d\n", len(edges))
	for _, e := range edges {
		fmt.Fprintf(w, "e %d %d %d %d\n", e.a.id, e.ai, e.b.id, e.bi)
	}
	fmt.Fprintf(w, "slots %d\n", len(slots))
	for _, sl := range slots {
		fmt.Fprintf(w, "s %d %d", sl.vid, sl.slot)
		for _, ref := range sl.refs {
			fmt.Fprintf(w, " %d", ref)
		}
		fmt.Fprintln(w)
	}

	// Frontier jobs, resolved through the union-find: serializing the live
	// root plus the shifted entry index is observationally identical to
	// serializing the original reference (explore re-resolves either way).
	type frontLine struct {
		id, entry int
		route     string
	}
	var front []frontLine
	for _, jb := range r.front {
		root, shift := find(jb.v)
		if root.deleted {
			continue
		}
		front = append(front, frontLine{id: root.id, entry: jb.entry + shift, route: jb.route.String()})
	}
	fmt.Fprintf(w, "front %d\n", len(front))
	for _, f := range front {
		fmt.Fprintf(w, "j %d %d %q\n", f.id, f.entry, f.route)
	}

	// Stale caps keyed by live roots only: entries for merged or deleted
	// vertices can never be read again (markStale and reexploreAt always
	// resolve to a live root first).
	type staleLine struct {
		id, n int
	}
	var stale []staleLine
	for v, n := range r.staleCount {
		if !v.deleted {
			stale = append(stale, staleLine{id: v.id, n: n})
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].id < stale[j].id })
	fmt.Fprintf(w, "stale %d\n", len(stale))
	for _, st := range stale {
		fmt.Fprintf(w, "c %d %d\n", st.id, st.n)
	}

	fmt.Fprintf(w, "obslog %d\n", len(r.obs))
	for _, o := range r.obs {
		fmt.Fprintf(w, "o %d %q %q\n", int64(o.At), o.What, o.Probe)
	}
	fmt.Fprintln(w, "end")
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ckptReader is a line-oriented parser with positioned errors.
type ckptReader struct {
	sc   *bufio.Scanner
	line int
}

func (cr *ckptReader) next() (string, error) {
	if !cr.sc.Scan() {
		if err := cr.sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("%w: truncated at line %d", ErrBadCheckpoint, cr.line)
	}
	cr.line++
	return cr.sc.Text(), nil
}

func (cr *ckptReader) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrBadCheckpoint, cr.line, fmt.Sprintf(format, args...))
}

// fields splits a line, checks the keyword and an exact argument count.
func (cr *ckptReader) fields(line, key string, n int) ([]string, error) {
	f := strings.Fields(line)
	if len(f) == 0 || f[0] != key {
		return nil, cr.errf("want %q record, got %q", key, line)
	}
	if n >= 0 && len(f)-1 != n {
		return nil, cr.errf("%s record wants %d fields, got %d", key, n, len(f)-1)
	}
	return f[1:], nil
}

func atoiAll(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// splitQuoted splits a line of the form "key n... q... q..." where the
// trailing fields are Go-quoted strings (which may contain spaces).
func splitQuoted(s string, nPlain, nQuoted int) (plain []string, quoted []string, err error) {
	rest := s
	for i := 0; i < nPlain; i++ {
		rest = strings.TrimLeft(rest, " ")
		j := strings.IndexByte(rest, ' ')
		if j < 0 {
			return nil, nil, io.ErrUnexpectedEOF
		}
		plain = append(plain, rest[:j])
		rest = rest[j:]
	}
	for i := 0; i < nQuoted; i++ {
		rest = strings.TrimLeft(rest, " ")
		if len(rest) == 0 || rest[0] != '"' {
			return nil, nil, fmt.Errorf("want quoted field in %q", s)
		}
		// Find the closing quote, honouring escapes.
		j := 1
		for j < len(rest) {
			if rest[j] == '\\' {
				j += 2
				continue
			}
			if rest[j] == '"' {
				break
			}
			j++
		}
		if j >= len(rest) {
			return nil, nil, fmt.Errorf("unterminated quote in %q", s)
		}
		q, err := strconv.Unquote(rest[:j+1])
		if err != nil {
			return nil, nil, err
		}
		quoted = append(quoted, q)
		rest = rest[j+1:]
	}
	if strings.TrimSpace(rest) != "" {
		return nil, nil, fmt.Errorf("trailing junk in %q", s)
	}
	return plain, quoted, nil
}

// RestoreSession reconstructs a checkpointed session over a fresh prober
// (typically in a brand-new process after a crash). The options must
// resolve to the configuration that wrote the checkpoint — the config echo
// is verified, not adopted — and the prober must face the same network
// state; under those conditions the restored session's Remap is
// probe-for-probe identical to the uninterrupted run's remainder.
//
// The model graph is rebuilt structurally — vertices, edges and slot lists
// are placed exactly as serialized, bypassing addEdge's merge machinery —
// so restoring replays no deductions and re-fires no contradiction hooks.
func RestoreSession(p simnet.Prober, data []byte, opts ...Option) (*Session, error) {
	cfg := BuildConfig(opts...)
	cfg.SelfHeal = true
	if err := checkpointable(cfg); err != nil {
		return nil, err
	}
	if cfg.MaxVertices == 0 {
		cfg.MaxVertices = 1 << 20
	}
	if err := resolveMaxPorts(&cfg, p); err != nil {
		return nil, err
	}

	cr := &ckptReader{sc: bufio.NewScanner(bytes.NewReader(data))}
	cr.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line, err := cr.next()
	if err != nil {
		return nil, err
	}
	if line != checkpointMagic {
		return nil, cr.errf("bad magic %q", line)
	}
	line, err = cr.next()
	if err != nil {
		return nil, err
	}
	if want := configLine(cfg); line != want {
		return nil, fmt.Errorf("%w: checkpoint %q vs session %q", ErrCheckpointMismatch, line, want)
	}

	s := &Session{r: &run{cfg: cfg, p: p, model: newModel(), m: registerRunMetrics(cfg.Metrics)}}
	r := s.r
	r.model.maxPorts = cfg.MaxPorts
	r.staleCount = make(map[*Vertex]int)
	r.model.onInconsistency = r.noteContradiction
	r.start = p.Clock()

	// heal
	line, err = cr.next()
	if err != nil {
		return nil, err
	}
	f, err := cr.fields(line, "heal", 5)
	if err != nil {
		return nil, err
	}
	hv, err := atoiAll(f)
	if err != nil {
		return nil, cr.errf("heal: %v", err)
	}
	s.heal = healState{round: hv[0], sweepDone: hv[1] != 0, dropped: hv[2], done: hv[3] != 0}
	r.partial = hv[4] != 0

	// stats
	line, err = cr.next()
	if err != nil {
		return nil, err
	}
	if f, err = cr.fields(line, "stats", 8); err != nil {
		return nil, err
	}
	sv, err := atoiAll(f)
	if err != nil {
		return nil, cr.errf("stats: %v", err)
	}
	r.stats.Explorations, r.stats.SkippedJobs, r.stats.Merges, r.stats.PrunedVerts = sv[0], sv[1], sv[2], sv[3]
	r.stats.Inconsistent, r.stats.EliminatedPro, r.stats.Contradictions, r.stats.Reexplored = sv[4], sv[5], sv[6], sv[7]

	// model
	line, err = cr.next()
	if err != nil {
		return nil, err
	}
	if f, err = cr.fields(line, "model", 2); err != nil {
		return nil, err
	}
	mv, err := atoiAll(f)
	if err != nil {
		return nil, cr.errf("model: %v", err)
	}
	m := r.model
	m.Inconsistencies = mv[1]

	count := func(key string) (int, error) {
		line, err := cr.next()
		if err != nil {
			return 0, err
		}
		f, err := cr.fields(line, key, 1)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(f[0])
		if err != nil || n < 0 {
			return 0, cr.errf("%s count %q", key, f[0])
		}
		return n, nil
	}

	// verts
	nVerts, err := count("verts")
	if err != nil {
		return nil, err
	}
	byID := make(map[int]*Vertex, nVerts)
	for i := 0; i < nVerts; i++ {
		line, err := cr.next()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "v ") {
			return nil, cr.errf("want vertex record, got %q", line)
		}
		plain, quoted, err := splitQuoted(line[2:], 6, 2)
		if err != nil {
			return nil, cr.errf("vertex: %v", err)
		}
		iv, err := atoiAll([]string{plain[0], plain[2], plain[3], plain[4], plain[5]})
		if err != nil {
			return nil, cr.errf("vertex: %v", err)
		}
		kind := topology.SwitchNode
		if plain[1] == "h" {
			kind = topology.HostNode
		} else if plain[1] != "s" {
			return nil, cr.errf("vertex kind %q", plain[1])
		}
		probe, err := simnet.ParseRoute(quoted[1])
		if err != nil {
			return nil, cr.errf("vertex route: %v", err)
		}
		if _, dup := byID[iv[0]]; dup {
			return nil, cr.errf("duplicate vertex id %d", iv[0])
		}
		v := &Vertex{id: iv[0], kind: kind, name: quoted[0], probe: probe,
			explored: iv[1] != 0, slots: make(map[int][]*Edge)}
		if iv[2] != 0 {
			// Re-pin the serialized window memo. Restore fills slots by
			// direct append (never insertSide), so editGen stays at its
			// NewModel value and the memo is live exactly as it was.
			v.winLo, v.winHi, v.winGen = iv[3], iv[4], m.editGen
		}
		byID[v.id] = v
		m.verts = append(m.verts, v)
		m.liveVerts++
		if kind == topology.HostNode {
			m.hostByName[v.name] = v
		}
		if v.id >= mv[0] {
			return nil, cr.errf("vertex id %d outside nextID %d", v.id, mv[0])
		}
	}
	m.nextID = mv[0]

	// edges
	nEdges, err := count("edges")
	if err != nil {
		return nil, err
	}
	edges := make([]*Edge, nEdges)
	for i := 0; i < nEdges; i++ {
		line, err := cr.next()
		if err != nil {
			return nil, err
		}
		f, err := cr.fields(line, "e", 4)
		if err != nil {
			return nil, err
		}
		ev, err := atoiAll(f)
		if err != nil {
			return nil, cr.errf("edge: %v", err)
		}
		a, okA := byID[ev[0]]
		b, okB := byID[ev[2]]
		if !okA || !okB {
			return nil, cr.errf("edge references unknown vertex (%d, %d)", ev[0], ev[2])
		}
		edges[i] = &Edge{a: a, ai: ev[1], b: b, bi: ev[3]}
	}
	m.liveEdges = nEdges

	// slots
	nSlots, err := count("slots")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSlots; i++ {
		line, err := cr.next()
		if err != nil {
			return nil, err
		}
		f, err := cr.fields(line, "s", -1)
		if err != nil {
			return nil, err
		}
		if len(f) < 3 {
			return nil, cr.errf("slot record wants at least 3 fields")
		}
		lv, err := atoiAll(f)
		if err != nil {
			return nil, cr.errf("slot: %v", err)
		}
		v, ok := byID[lv[0]]
		if !ok {
			return nil, cr.errf("slot references unknown vertex %d", lv[0])
		}
		for _, ref := range lv[2:] {
			if ref < 0 || ref >= nEdges {
				return nil, cr.errf("slot references unknown edge %d", ref)
			}
			v.slots[lv[1]] = append(v.slots[lv[1]], edges[ref])
		}
	}

	// front
	nFront, err := count("front")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nFront; i++ {
		line, err := cr.next()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "j ") {
			return nil, cr.errf("want frontier record, got %q", line)
		}
		plain, quoted, err := splitQuoted(line[2:], 2, 1)
		if err != nil {
			return nil, cr.errf("frontier: %v", err)
		}
		jv, err := atoiAll(plain)
		if err != nil {
			return nil, cr.errf("frontier: %v", err)
		}
		v, ok := byID[jv[0]]
		if !ok {
			return nil, cr.errf("frontier references unknown vertex %d", jv[0])
		}
		route, err := simnet.ParseRoute(quoted[0])
		if err != nil {
			return nil, cr.errf("frontier route: %v", err)
		}
		r.front = append(r.front, job{v: v, route: route, entry: jv[1]})
	}

	// stale
	nStale, err := count("stale")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nStale; i++ {
		line, err := cr.next()
		if err != nil {
			return nil, err
		}
		f, err := cr.fields(line, "c", 2)
		if err != nil {
			return nil, err
		}
		cv, err := atoiAll(f)
		if err != nil {
			return nil, cr.errf("stale: %v", err)
		}
		v, ok := byID[cv[0]]
		if !ok {
			return nil, cr.errf("stale references unknown vertex %d", cv[0])
		}
		r.staleCount[v] = cv[1]
	}

	// obslog
	nObs, err := count("obslog")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nObs; i++ {
		line, err := cr.next()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "o ") {
			return nil, cr.errf("want observation record, got %q", line)
		}
		plain, quoted, err := splitQuoted(line[2:], 1, 2)
		if err != nil {
			return nil, cr.errf("observation: %v", err)
		}
		at, err := strconv.ParseInt(plain[0], 10, 64)
		if err != nil {
			return nil, cr.errf("observation: %v", err)
		}
		r.obs = append(r.obs, Observation{At: time.Duration(at), What: quoted[0], Probe: quoted[1]})
	}

	line, err = cr.next()
	if err != nil {
		return nil, err
	}
	if line != "end" {
		return nil, cr.errf("want end, got %q", line)
	}

	if _, ok := m.hostByName[p.LocalHost()]; !ok {
		return nil, fmt.Errorf("%w: mapping host %q missing from checkpoint", ErrCheckpointMismatch, p.LocalHost())
	}
	r.initPipeline()
	return s, nil
}
