package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestMapBeyondPaperScale maps a synthetic system twice the paper's size
// (192 hosts, 52 switches) — the scaling regime §6 worries about.
func TestMapBeyondPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large system")
	}
	rng := rand.New(rand.NewSource(88))
	net := topology.MustFatTree(topology.FatTreeSpec{
		LeafSwitches: 32, HostsPerLeaf: 6,
		MidSwitches: 16, RootSwitches: 4,
		UplinksPerLeaf: 2, UplinksPerMid: 2,
	}, rng)
	if net.NumHosts() != 192 || net.NumSwitches() != 52 {
		t.Fatalf("unexpected scale: %v", net)
	}
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	m, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		t.Fatal(err)
	}
	t.Logf("192-host system: %d probes, %v simulated, %d explorations",
		m.Stats.Probes.TotalProbes(), m.Stats.Elapsed, m.Stats.Explorations)
}
