package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestMergeMapsFromDifferentVantagePoints: maps taken by different hosts
// (full depth each, so full overlap) merge into a view isomorphic to each
// individual map — the §6 parallel-mapping merge.
func TestMergeMapsFromDifferentVantagePoints(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(4, 6, 2, rng)
		hosts := net.Hosts()
		var partials []*Map
		for _, h := range []topology.NodeID{hosts[0], hosts[len(hosts)/2], hosts[len(hosts)-1]} {
			sn := simnet.NewDefault(net)
			m, err := Run(sn.Endpoint(h), WithDepth(net.DepthBound(h)))
			if err != nil {
				t.Fatalf("seed %d host %d: %v", seed, h, err)
			}
			partials = append(partials, m)
		}
		merged, err := MergeMaps(partials...)
		if err != nil {
			t.Fatalf("seed %d: merge: %v", seed, err)
		}
		if err := isomorph.MustEqualCore(merged.Network, net); err != nil {
			t.Fatalf("seed %d: merged map: %v", seed, err)
		}
		if merged.Stats.Inconsistent != 0 {
			t.Errorf("seed %d: merge recorded %d inconsistencies", seed, merged.Stats.Inconsistent)
		}
	}
}

// TestMergeMapsPartialViews: depth-limited partial maps from opposite ends
// of a chain merge into more of the network than either saw alone.
func TestMergeMapsPartialViews(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net := topology.MustLine(6, 1, rng) // 6 switches in a row, one host each
	hosts := net.Hosts()
	left, right := hosts[0], hosts[len(hosts)-1]

	partial := func(h topology.NodeID) *Map {
		sn := simnet.NewDefault(net)
		m, err := Run(sn.Endpoint(h), WithDepth(5)) // sees ~5 switches
		if err != nil {
			t.Fatalf("partial from %d: %v", h, err)
		}
		return m
	}
	pl, pr := partial(left), partial(right)
	if pl.Network.NumSwitches() >= net.NumSwitches() {
		t.Fatalf("left partial saw the whole network (%d switches); depth too deep for this test",
			pl.Network.NumSwitches())
	}
	merged, err := MergeMaps(pl, pr)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got, l := merged.Network.NumSwitches(), pl.Network.NumSwitches(); got <= l {
		t.Errorf("merged view (%d switches) no larger than left partial (%d)", got, l)
	}
	if err := isomorph.MustEqualCore(merged.Network, net); err != nil {
		// Partial views may legitimately miss middle cross edges; require
		// only growth, but report for visibility.
		t.Logf("merged view not yet complete (expected for shallow partials): %v", err)
	}
}

// TestRandomizedRun: the coupon-collector hybrid must produce the same
// correct map as the plain BFS.
func TestRandomizedRun(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(4, 6, 2, rng)
		h0 := net.Hosts()[0]
		sn := simnet.NewDefault(net)
		cfg := RandomizedConfig{
			Config:       DefaultConfig(net.DepthBound(h0)),
			CouponProbes: 60,
			Rng:          rand.New(rand.NewSource(seed + 1000)),
		}
		m, err := RandomizedRun(sn.Endpoint(h0), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := isomorph.MustEqualCore(m.Network, net); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRandomizedChainsShortenBFS: with hosts tolerant of leftover flits,
// phase 1 should discover structure, reducing the number of phase-2
// explorations relative to pure BFS on an expander-ish topology.
func TestRandomizedChainsShortenBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := topology.MustHypercube(3, 2, rng)
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)

	snA := simnet.NewDefault(net)
	plain, err := Run(snA.Endpoint(h0), WithDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	snB := simnet.NewDefault(net)
	hybrid, err := RandomizedRun(snB.Endpoint(h0), RandomizedConfig{
		Config:       DefaultConfig(depth),
		CouponProbes: 120,
		Rng:          rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := isomorph.Check(plain.Network, hybrid.Network); !ok {
		t.Fatalf("hybrid and plain maps differ: %s", reason)
	}
	t.Logf("hypercube(3): plain probes=%d, hybrid probes=%d (incl %d coupons)",
		plain.Stats.Probes.TotalProbes(), hybrid.Stats.Probes.TotalProbes(), 120)
}
