package mapper

import (
	"sanmap/internal/simnet"
)

// The pipelined explore path. The paper's cost analysis (§5.2) shows probe
// time is dominated by sequential response timeouts: a miss costs the full
// ResponseTimeout on top of the per-probe host overhead, and most frontier
// probes miss. All candidate turns of one frontier switch are independent
// probes, so the engine prefetches them through a simnet.ProbeWindow with W
// probes in flight — paying the issue overhead serially but overlapping the
// waits — and the serial deduction loop then consumes the prefetched
// responses in its usual order. Because the quiescent transport's response
// to a route is time-invariant, the resulting model (and therefore the
// exported map) is byte-identical to the serial run's; only the virtual
// clock and the speculative probe counts differ.

// initPipeline activates the probe engine when configured and supported.
// The engine inherits the run's metrics registry unless the window config
// names its own, so one WithMetrics covers both layers.
func (r *run) initPipeline() {
	if r.cfg.Pipeline.Window <= 1 {
		return
	}
	ap, ok := r.p.(simnet.AsyncProber)
	if !ok || !ap.Probes().Has(simnet.CapHost|simnet.CapSwitch) {
		return
	}
	if r.cfg.Pipeline.Metrics == nil {
		r.cfg.Pipeline.Metrics = r.cfg.Metrics
	}
	r.win = simnet.NewProbeWindow(ap, r.cfg.Pipeline)
}

// finishPipeline folds the engine counters into the run statistics.
func (r *run) finishPipeline() {
	if r.win == nil {
		return
	}
	r.stats.Pipeline = r.win.Stats()
	r.emit(TraceEvent{Kind: TracePipeline, Response: r.stats.Pipeline.String()})
}

// exploreStream drives one exploration's probe pairs through a
// simnet.Stream: a sliding lookahead of first-order probes for the upcoming
// candidate turns, with each pair's second-order probe submitted the moment
// its first probe's miss is collected — so the window never drains between
// phases and every response timeout overlaps the issue of later probes.
// Candidates are filtered at submission time under the *current* §3.3
// filters (feasible window, occupied slots); the filters only tighten as
// the exploration proceeds, so speculative waste is bounded by the window
// size, and a turn that passes the filters at consume time has always
// already been submitted.
type exploreStream struct {
	st            *simnet.Stream
	jb            job
	retryOnly     bool
	turns         []simnet.Turn
	next          int
	first, second simnet.ProbeKind
	routes        []simnet.Route         // tag -> route
	tagTurn       []simnet.Turn          // tag -> candidate turn
	phase2        []bool                 // tag -> second-order probe issued
	resp          []simnet.ProbeResponse // tag -> folded pair response
	done          []bool                 // tag -> resp is valid
	used          []bool                 // tag -> resp consumed by the deduction loop
	tiTag         []int                  // candidate index -> tag+1 (0 = not submitted)
}

// beginStream opens the pipelined stream for one exploration.
func (r *run) beginStream(jb job, turns []simnet.Turn, retryOnly bool) {
	if r.win == nil {
		return
	}
	first, second := simnet.ProbeHost, simnet.ProbeSwitch
	if r.cfg.ProbeOrder == SwitchFirst {
		first, second = second, first
	}
	ps := &r.psPool
	ps.st = r.win.Stream()
	ps.jb, ps.retryOnly = jb, retryOnly
	ps.turns = turns
	ps.next = 0
	ps.first, ps.second = first, second
	ps.routes = ps.routes[:0]
	ps.tagTurn = ps.tagTurn[:0]
	ps.phase2 = ps.phase2[:0]
	ps.resp = ps.resp[:0]
	ps.done = ps.done[:0]
	ps.used = ps.used[:0]
	if cap(ps.tiTag) < len(turns) {
		ps.tiTag = make([]int, len(turns))
	} else {
		ps.tiTag = ps.tiTag[:len(turns)]
		clear(ps.tiTag)
	}
	r.ps = ps
}

// endStream abandons the remaining lookahead and clears the prefetch state.
func (r *run) endStream() {
	if r.ps != nil {
		r.ps.st.Abandon()
		r.ps = nil
	}
}

// fillStep advances the candidate cursor by one turn, submitting its
// first-order probe when the turn passes the current filters.
func (ps *exploreStream) fillStep(r *run, root *Vertex, entry int) {
	t := ps.turns[ps.next]
	ps.next++
	idx := entry + int(t)
	if r.cfg.EliminateProbes {
		lo, hi := r.model.window(root)
		if !r.model.feasible(idx, lo, hi) {
			return
		}
	}
	if root.occupied(idx) && (r.cfg.SkipKnownSlots || ps.retryOnly) {
		return
	}
	tag := len(ps.routes)
	ps.routes = append(ps.routes, ps.jb.route.Extend(t))
	ps.tagTurn = append(ps.tagTurn, t)
	ps.phase2 = append(ps.phase2, false)
	ps.resp = append(ps.resp, simnet.ProbeResponse{})
	ps.done = append(ps.done, false)
	ps.used = append(ps.used, false)
	ps.tiTag[ps.next-1] = tag + 1
	ps.st.Submit(simnet.Probe{Kind: ps.first, Route: ps.routes[tag]}, tag)
}

// freeRide reports whether one more speculative submission costs nothing:
// the clock has not yet caught up with the oldest pending completion, so
// the stream would spend the submission's overhead waiting anyway. This
// self-paces the lookahead to the transport's timeout/overhead ratio
// instead of greedily saturating the window — greedy lookahead submits
// probes the tightening filters would have eliminated.
func (ps *exploreStream) freeRide(r *run) bool {
	d, ok := ps.st.NextDone()
	return ok && r.p.Clock() < d
}

// stale reports whether a tag's candidate turn has been ruled out by the
// filters since its submission. The filters only tighten, so a stale turn
// can never be demanded again — its pair needs no second-order probe.
func (ps *exploreStream) stale(r *run, root *Vertex, entry int, tag int) bool {
	idx := entry + int(ps.tagTurn[tag])
	if r.cfg.EliminateProbes {
		lo, hi := r.model.window(root)
		if !r.model.feasible(idx, lo, hi) {
			return true
		}
	}
	return root.occupied(idx) && (r.cfg.SkipKnownSlots || ps.retryOnly)
}

// streamWant resolves the probe pair for the candidate at index ti of the
// turn sequence into the prefetch state: it advances the candidate cursor
// far enough to submit the demanded probe, tops the window up with
// speculative lookahead only while that rides for free, and collects
// results — submitting each pair's second-order probe the moment its first
// probe's miss is retired, so the window never drains between phases. If
// the stream runs dry without covering ti (possible after a mid-exploration
// merge), pairAt falls back to serial probes.
func (r *run) streamWant(root *Vertex, entry int, ti int) {
	ps := r.ps
	if ps == nil {
		return
	}
	for {
		if tag := ps.tiTag[ti] - 1; tag >= 0 && ps.done[tag] && !ps.used[tag] {
			return
		}
		if ps.next <= ti && ps.st.Free() > 0 {
			ps.fillStep(r, root, entry) // the demanded probe itself
			continue
		}
		if ps.next > ti && ps.next < len(ps.turns) && ps.st.Free() > 0 && ps.freeRide(r) {
			ps.fillStep(r, root, entry) // free speculative lookahead
			continue
		}
		if ps.st.Len() == 0 {
			return
		}
		tag, res := ps.st.Collect()
		if !ps.phase2[tag] && !res.OK {
			if ps.stale(r, root, entry, tag) {
				continue // turn ruled out since submission; drop the pair
			}
			ps.phase2[tag] = true
			ps.st.Submit(simnet.Probe{Kind: ps.second, Route: ps.routes[tag]}, tag)
			continue
		}
		kind := ps.first
		if ps.phase2[tag] {
			kind = ps.second
		}
		ps.resp[tag] = pairResponse(kind, res)
		ps.done[tag] = true
	}
}

// pairResponse folds one probe result into the §2.3 response alphabet.
func pairResponse(kind simnet.ProbeKind, res simnet.ProbeResult) simnet.ProbeResponse {
	if !res.OK {
		return simnet.ProbeResponse{Kind: simnet.RespNothing}
	}
	if kind == simnet.ProbeHost {
		return simnet.ProbeResponse{Kind: simnet.RespHost, Host: res.Host}
	}
	return simnet.ProbeResponse{Kind: simnet.RespSwitch}
}
