package mapper_test

import (
	"fmt"
	"math/rand"

	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Example maps a small star network and verifies the reconstruction — the
// minimal use of the library's core API.
func Example() {
	net := topology.MustStar(3, 2, rand.New(rand.NewSource(7)))
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net) // quiescent Myrinet, circuit collision model

	m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(net.DepthBound(h0)))
	if err != nil {
		fmt.Println("mapping failed:", err)
		return
	}
	ok, _ := isomorph.Check(m.Network, net)
	fmt.Printf("mapped %d hosts and %d switches; isomorphic to the actual network: %v\n",
		m.Network.NumHosts(), m.Network.NumSwitches(), ok)
	// Output:
	// mapped 6 hosts and 4 switches; isomorphic to the actual network: true
}

// ExampleMergeMaps fuses partial maps from two vantage points (§6's
// parallel-mapping question).
func ExampleMergeMaps() {
	net := topology.MustLine(4, 1, rand.New(rand.NewSource(3)))
	hosts := net.Hosts()

	partial := func(h topology.NodeID) *mapper.Map {
		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h), mapper.WithDepth(net.DepthBound(h)))
		if err != nil {
			panic(err)
		}
		return m
	}
	merged, err := mapper.MergeMaps(partial(hosts[0]), partial(hosts[len(hosts)-1]))
	if err != nil {
		fmt.Println("merge failed:", err)
		return
	}
	ok, _ := isomorph.Check(merged.Network, net)
	fmt.Println("merged view isomorphic:", ok)
	// Output:
	// merged view isomorphic: true
}
