package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// TestBerkeleyMapsLoopbackPlug: the merge machinery deduces a port cabled
// to itself and the export emits it as a loopback plug.
func TestBerkeleyMapsLoopbackPlug(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := topology.MustLine(3, 2, rng)
	sw := net.Switches()
	if err := net.AddReflector(sw[1], net.FreePort(sw[1])); err != nil {
		t.Fatal(err)
	}
	m := mapAndVerifyReflector(t, net)
	if got := len(m.Network.Reflectors()); got != 1 {
		t.Fatalf("mapped %d reflectors, want 1: %v", got, m.Network)
	}
}

// TestBerkeleyMapsSelfLoopCable: a two-port cable on one switch survives
// mapping as a self-loop wire.
func TestBerkeleyMapsSelfLoopCable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := topology.MustLine(3, 2, rng)
	sw := net.Switches()
	if _, _, _, err := net.ConnectFree(sw[1], sw[1]); err != nil {
		t.Fatal(err)
	}
	mapAndVerifyReflector(t, net)
}

func mapAndVerifyReflector(t *testing.T, net *topology.Network) *Map {
	t.Helper()
	h0 := net.Hosts()[0]
	sn := simnet.NewDefault(net)
	m, err := Run(sn.Endpoint(h0), WithDepth(net.DepthBound(h0)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		t.Fatalf("%v\nactual: %v\nmapped: %v", err, net, m.Network)
	}
	return m
}
