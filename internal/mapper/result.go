package mapper

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// Observation is one mapper-side fault-log entry: the run's own record of
// a contradiction noticed, a region re-explored, an edge dropped or a
// budget exhausted, in virtual-time order. It complements the injector's
// ground-truth log (internal/faults): the injector records what actually
// happened to the network, the Observation log what the mapper deduced.
type Observation struct {
	At    time.Duration
	What  string
	Probe string // route string involved, "" when not applicable
}

// String renders one log line.
func (o Observation) String() string {
	if o.Probe == "" {
		return fmt.Sprintf("%v %s", o.At, o.What)
	}
	return fmt.Sprintf("%v %s probe=%s", o.At, o.What, o.Probe)
}

// observe appends one entry to the run's fault log (self-healing runs
// only; the legacy path keeps no log) and mirrors it onto the tracer as a
// cat-"heal" instant.
func (r *run) observe(what string, probe simnet.Route) {
	if !r.cfg.SelfHeal {
		return
	}
	o := Observation{At: r.p.Clock(), What: what}
	if probe != nil {
		o.Probe = probe.String()
	}
	r.obs = append(r.obs, o)
	if r.cfg.Tracer != nil {
		if o.Probe != "" {
			r.cfg.Tracer.Instant("heal", what, o.At, obs.String("route", o.Probe))
		} else {
			r.cfg.Tracer.Instant("heal", what, o.At)
		}
	}
}

// Result is the partial-map result of a fault-tolerant mapping run. It
// embeds the classic Map and adds the degradation report: instead of
// erroring out when the network misbehaves, a Session returns the best map
// it could assemble together with how much of it to believe.
type Result struct {
	*Map
	// Confidence is liveEdges/(liveEdges+contradictions+suspects), scaled
	// by ½ when the run was cut short — 1.0 exactly on a clean quiescent
	// run, degrading towards 0 as deductions had to be thrown away (see
	// DESIGN.md §9 for the definition's rationale).
	Confidence float64
	// Partial marks a run stopped by its fault budget: the graph covers
	// only the explored region.
	Partial bool
	// Suspect lists deductions dropped at export because they conflicted
	// (two edges claiming one port, unexportable wiring), sorted.
	Suspect []string
	// SuspectIDs are the exported node ids touched by suspect deductions,
	// sorted and deduplicated — the "suspect region" a degraded server can
	// refuse to route through while still serving everything else.
	SuspectIDs []topology.NodeID
	// FaultLog is the mapper's own record of contradictions, re-explores
	// and dropped edges, in virtual-time order.
	FaultLog []Observation
}

// result assembles a Result from the run's current model: prune, tolerant
// export, confidence. Unlike the strict export path, conflicting
// deductions are skipped and reported instead of failing the run.
func (r *run) result() (*Result, error) {
	r.prune()
	r.stats.Elapsed = r.p.Clock() - r.start
	if ns, ok := r.p.(interface{ Stats() simnet.Stats }); ok {
		r.stats.Probes = ns.Stats()
	}
	r.stats.Inconsistent = r.model.Inconsistencies
	r.finishPipeline()

	net, mapperID, suspects, suspectIDs, err := exportTolerant(r.model, r.p.LocalHost())
	if err != nil {
		return nil, err
	}
	for _, s := range suspects {
		r.observe("suspect-edge", nil)
		_ = s
	}
	edges := net.NumWires()
	bad := r.stats.Contradictions + len(suspects)
	conf := 1.0
	if edges+bad > 0 {
		conf = float64(edges) / float64(edges+bad)
	}
	if r.partial {
		conf *= 0.5
	}
	return &Result{
		Map:        &Map{Network: net, Mapper: mapperID, Stats: r.stats, Series: r.series},
		Confidence: conf,
		Partial:    r.partial,
		Suspect:    suspects,
		SuspectIDs: suspectIDs,
		FaultLog:   r.obs,
	}, nil
}

// exportTolerant converts a model graph into a topology.Network like
// exportModel, but degrades instead of failing: when a slot holds several
// live edges (an unresolved contradiction) only the oldest is exported,
// and wiring the strict exporter would reject is skipped. Every dropped
// deduction is reported in suspects (sorted); the exported ids its
// endpoints map to are collected in suspectIDs (sorted, deduplicated).
func exportTolerant(model *Model, localHost string) (*topology.Network, topology.NodeID, []string, []topology.NodeID, error) {
	net := &topology.Network{}
	ids := make(map[*Vertex]topology.NodeID)
	swCount := 0
	for _, v := range model.liveVertices() {
		if v.kind == topology.HostNode {
			ids[v] = net.AddHost(v.name)
		} else {
			ids[v] = net.AddSwitchRadix(fmt.Sprintf("m%d", swCount), model.maxPorts)
			swCount++
		}
	}
	var suspects []string
	portOf := make(map[*Vertex]int)
	base := func(v *Vertex) int {
		if p0, ok := portOf[v]; ok {
			return p0
		}
		lo, hi := model.window(v)
		if lo > hi {
			lo = 0 // inconsistent window (possible only under noise)
		}
		portOf[v] = lo
		return lo
	}
	desc := func(e *Edge) string {
		name := func(v *Vertex) string {
			if v.name != "" {
				return v.name
			}
			return fmt.Sprintf("s%d", v.id)
		}
		return fmt.Sprintf("%s[%d]--%s[%d]", name(e.a), e.ai, name(e.b), e.bi)
	}
	suspectIDSet := make(map[topology.NodeID]bool)
	suspect := func(e *Edge) {
		suspects = append(suspects, desc(e))
		suspectIDSet[ids[e.a]] = true
		suspectIDSet[ids[e.b]] = true
	}
	seen := make(map[*Edge]bool)
	var slotIdx []int
	for _, v := range model.liveVertices() {
		slotIdx = slotIdx[:0]
		for i := range v.slots {
			slotIdx = append(slotIdx, i)
		}
		sort.Ints(slotIdx)
		for _, i := range slotIdx {
			// One actual port holds one actual cable: with several live
			// edges claiming the slot, trust the oldest deduction and mark
			// the rest suspect.
			taken := false
			for _, e := range v.slots[i] {
				if e.deleted || seen[e] {
					if seen[e] && !e.deleted {
						taken = true
					}
					continue
				}
				if taken {
					seen[e] = true
					suspect(e)
					continue
				}
				seen[e] = true
				taken = true
				pa, pb := e.ai, e.bi
				if e.a.kind == topology.SwitchNode {
					pa += base(e.a)
				} else {
					pa = 0
				}
				if e.b.kind == topology.SwitchNode {
					pb += base(e.b)
				} else {
					pb = 0
				}
				if e.a == e.b && pa == pb {
					if err := net.AddReflector(ids[e.a], pa); err != nil {
						suspect(e)
					}
					continue
				}
				if _, err := net.Connect(ids[e.a], pa, ids[e.b], pb); err != nil {
					suspect(e)
				}
			}
		}
	}
	mapperID := net.Lookup(localHost)
	if mapperID == topology.None {
		return nil, 0, nil, nil, errors.New("mapper: mapping host missing from its own map")
	}
	sort.Strings(suspects)
	suspectIDs := make([]topology.NodeID, 0, len(suspectIDSet))
	for id := range suspectIDSet {
		suspectIDs = append(suspectIDs, id)
	}
	sort.Slice(suspectIDs, func(i, j int) bool { return suspectIDs[i] < suspectIDs[j] })
	if len(suspectIDs) == 0 {
		suspectIDs = nil
	}
	return net, mapperID, suspects, suspectIDs, nil
}
