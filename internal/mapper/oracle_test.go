package mapper

import (
	"math/rand"
	"testing"

	"sanmap/internal/isomorph"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// oracleNet wraps a network with self-identification enabled.
func oracleNet(net *topology.Network) *simnet.Net {
	sn := simnet.NewDefault(net)
	sn.EnableSelfID()
	return sn
}

// TestOracleMapsExactly: with self-identifying switches the map equals the
// full network (including F — the oracle needs no prune), with the TRUE
// absolute port numbers.
func TestOracleMapsExactly(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := topology.MustRandomConnected(3+rng.Intn(5), 2+rng.Intn(6), rng.Intn(4), rng)
		if seed%2 == 0 {
			topology.WithTail(net, net.Switches()[0], 1, rng)
		}
		h0 := net.Hosts()[0]
		m, err := OracleRun(oracleNet(net).Endpoint(h0), net.DepthBound(h0))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok, reason := isomorph.Check(m.Network, net); !ok {
			t.Fatalf("seed %d: oracle map != N: %s\nactual: %v\nmapped: %v",
				seed, reason, net, m.Network)
		}
	}
}

// TestOracleFindsPlugsAndLoops.
func TestOracleFindsPlugsAndLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	net := topology.MustLine(3, 2, rng)
	sw := net.Switches()
	if err := net.AddReflector(sw[1], net.FreePort(sw[1])); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := net.ConnectFree(sw[2], sw[2]); err != nil {
		t.Fatal(err)
	}
	h0 := net.Hosts()[0]
	m, err := OracleRun(oracleNet(net).Endpoint(h0), net.DepthBound(h0))
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := isomorph.Check(m.Network, net); !ok {
		t.Fatalf("oracle map != N: %s", reason)
	}
	if got := len(m.Network.Reflectors()); got != 1 {
		t.Errorf("oracle found %d plugs, want 1", got)
	}
}

// TestOracleProbeEconomy quantifies §6's "the exploration process would be
// simpler": the oracle's probe count undercuts the Berkeley algorithm's on
// the same network, because anonymity is what costs probes.
func TestOracleProbeEconomy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := topology.MustRing(6, 2, rng)
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)

	berk, err := Run(simnet.NewDefault(net).Endpoint(h0), WithDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := OracleRun(oracleNet(net).Endpoint(h0), depth)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := isomorph.Check(berk.Network, oracle.Network); !ok {
		t.Fatalf("maps differ: %s", reason)
	}
	if oracle.Stats.Probes.TotalProbes() >= berk.Stats.Probes.TotalProbes() {
		t.Errorf("oracle (%d probes) should undercut berkeley (%d)",
			oracle.Stats.Probes.TotalProbes(), berk.Stats.Probes.TotalProbes())
	}
	t.Logf("ring(6): oracle %d probes vs berkeley %d",
		oracle.Stats.Probes.TotalProbes(), berk.Stats.Probes.TotalProbes())
}

// TestOracleRequiresSelfID: the oracle transport must be explicitly
// enabled; default Myrinet has no such mechanism.
func TestOracleRequiresSelfID(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	net := topology.MustLine(2, 1, rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic without EnableSelfID")
		}
	}()
	sn := simnet.NewDefault(net)
	_, _ = OracleRun(sn.Endpoint(net.Hosts()[0]), 3) //nolint:errcheck
}
