package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// Registry holds named metrics. Registration returns pre-resolved handles
// — the hot path never touches the registry again, so updates are
// zero-allocation and map-lookup-free. Names follow the dotted scheme
// documented in the package comment; registering a name twice returns the
// same handle, which is how several instrumented components share one
// aggregate counter when handed one registry.
//
// A nil *Registry is a valid no-op: it hands out nil handles, whose
// update methods are themselves no-ops, so instrumented code registers
// and updates unconditionally.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically accumulating metric handle.
type Counter struct {
	name string
	v    int64
}

// Counter registers (or finds) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Add accumulates n. Nil receivers are no-ops, so instrumentation sites
// need no registry checks.
//
//sanlint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc accumulates 1.
//
//sanlint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// AddDuration accumulates a virtual-time duration as nanoseconds; pair
// with a ".ns"-suffixed name and read back with DurationValue.
//
//sanlint:hotpath
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Value returns the accumulated count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// DurationValue returns the accumulated count as a virtual-time duration.
func (c *Counter) DurationValue() time.Duration { return time.Duration(c.Value()) }

// Gauge is a last-value (or high-water-mark, via SetMax) metric handle.
type Gauge struct {
	name string
	v    int64
}

// Gauge registers (or finds) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Set stores v.
//
//sanlint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// SetMax stores v if it exceeds the current value — the high-water-mark
// idiom (e.g. the probe window's in-flight peak).
//
//sanlint:hotpath
func (g *Gauge) SetMax(v int64) {
	if g == nil || v <= g.v {
		return
	}
	g.v = v
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts virtual-time durations into fixed buckets chosen at
// registration — there is no dynamic resizing, so Observe touches only
// pre-allocated memory.
type Histogram struct {
	name   string
	bounds []time.Duration // inclusive upper bounds, ascending
	counts []int64         // len(bounds)+1; last is the overflow bucket
	sum    time.Duration
	n      int64
}

// Histogram registers (or finds) the histogram with the given name.
// bounds are inclusive upper bounds in ascending order; one overflow
// bucket is added past the last. Re-registering a name returns the
// existing histogram (its original bounds win).
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// DefaultBuckets spans the virtual-time scales of the simulated NOW —
// 1µs to ~1s, ×4 per step (probe round trips sit near the bottom,
// blocked-port resets near the top).
func DefaultBuckets() []time.Duration {
	var out []time.Duration
	for b := time.Microsecond; b < time.Second; b *= 4 {
		out = append(out, b)
	}
	return out
}

// Observe counts one duration into its bucket.
//
//sanlint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += d
	h.n++
}

// N returns the number of observations (0 on nil).
func (h *Histogram) N() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total observed duration (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// EachCounter calls f for every registered counter in sorted name order —
// the programmatic analogue of WriteText, for servers that export the
// registry over a query protocol. Deterministic; nil registries no-op.
func (r *Registry) EachCounter(f func(name string, value int64)) {
	if r == nil {
		return
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f(n, r.counters[n].v)
	}
}

// EachGauge calls f for every registered gauge in sorted name order.
func (r *Registry) EachGauge(f func(name string, value int64)) {
	if r == nil {
		return
	}
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f(n, r.gauges[n].v)
	}
}

// WriteText renders every metric sorted by name, one per line:
// counters and gauges as "name value", duration counters additionally in
// duration notation, histograms as count/sum plus per-bucket tallies
// (empty buckets omitted). Deterministic by construction.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := r.counters[n]
		if len(n) > 3 && n[len(n)-3:] == ".ns" {
			fmt.Fprintf(bw, "%s %d (%v)\n", n, c.v, c.DurationValue())
		} else {
			fmt.Fprintf(bw, "%s %d\n", n, c.v)
		}
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(bw, "%s %d\n", n, r.gauges[n].v)
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		fmt.Fprintf(bw, "%s count=%d sum=%v", n, h.n, h.sum)
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			if i < len(h.bounds) {
				fmt.Fprintf(bw, " le(%v)=%d", h.bounds[i], c)
			} else {
				fmt.Fprintf(bw, " overflow=%d", c)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
