package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags is the telemetry flag surface shared by the sanmap, sanexp and
// sanwatch commands: every figure or mapping run can emit its trace and
// metrics sidecars plus wall-clock pprof profiles with the same four
// flags. Zero-valued paths disable the corresponding sink; Tracer and
// Metrics stay nil then, which the instrumentation layers treat as "off".
type Flags struct {
	TracePath   string
	MetricsPath string
	CPUProfile  string
	MemProfile  string

	// Tracer and Metrics are allocated by Begin when the matching path
	// flag was given; pass them to the instrumented subsystems.
	Tracer  *Tracer
	Metrics *Registry

	cpuFile *os.File
}

// AddFlags registers -trace, -metrics, -cpuprofile and -memprofile on fs
// and returns the struct their values land in. Call Begin after
// fs.Parse and Finish once the run completes.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.TracePath, "trace", "", "write a Chrome trace_event JSON sidecar to this file (chrome://tracing, Perfetto)")
	fs.StringVar(&f.MetricsPath, "metrics", "", "write the metrics registry as text to this file")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	return f
}

// Begin allocates the tracer and registry for the requested sidecars and
// starts CPU profiling. The profiles are the one place wall time enters
// the telemetry story — they measure the simulator itself, not the
// simulation, and never feed back into any deterministic output.
func (f *Flags) Begin() error {
	if f.TracePath != "" {
		f.Tracer = NewTracer()
	}
	if f.MetricsPath != "" {
		f.Metrics = NewRegistry()
	}
	if f.CPUProfile != "" {
		fh, err := os.Create(f.CPUProfile)
		if err != nil {
			return fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fh.Close()
			return fmt.Errorf("obs: cpuprofile: %w", err)
		}
		f.cpuFile = fh
	}
	return nil
}

// Finish stops profiling and writes every requested sidecar.
func (f *Flags) Finish() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return fmt.Errorf("obs: cpuprofile: %w", err)
		}
		f.cpuFile = nil
	}
	if f.MemProfile != "" {
		fh, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		runtime.GC() // settle live heap before the snapshot
		err = pprof.WriteHeapProfile(fh)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
	}
	if f.TracePath != "" {
		if err := WriteTraceFile(f.TracePath, f.Tracer); err != nil {
			return err
		}
	}
	if f.MetricsPath != "" {
		if err := WriteMetricsFile(f.MetricsPath, f.Metrics); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceFile writes the tracer's Chrome trace_event JSON to path.
func WriteTraceFile(path string, t *Tracer) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	err = t.WriteChrome(fh)
	if cerr := fh.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	return nil
}

// WriteMetricsFile writes the registry's text rendering to path.
func WriteMetricsFile(path string, r *Registry) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics: %w", err)
	}
	err = r.WriteText(fh)
	if cerr := fh.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: metrics: %w", err)
	}
	return nil
}
