package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildTrace records a fixed synthetic event sequence exercising every
// event shape: nested spans, instants with args, explicit spans on a
// secondary track, an unclosed span.
func buildTrace() *Tracer {
	t := NewTracer()
	t.Begin("mapper", "explore-phase", 0)
	t.Begin("mapper", "explore", 10*time.Microsecond, Int("vertex", 1))
	t.Instant("mapper", "probe", 12*time.Microsecond, String("route", "+1"), String("resp", "switch"))
	t.Instant("mapper", "discover", 12500*time.Nanosecond, Int("vertex", 2))
	t.End(40 * time.Microsecond)
	t.End(55 * time.Microsecond)
	t.Span("election", "mapper", 5*time.Microsecond, 45*time.Microsecond, String("host", "U"))
	t.OnTrack(3).Span("watch", "epoch", 0, 30*time.Microsecond, Int("epoch", 0))
	t.OnTrack(3).Instant("faults", "link-cut", 20*time.Microsecond, Int("wire", 7))
	t.Begin("mapper", "prune", 60*time.Microsecond) // deliberately left open
	return t
}

// TestChromeGolden: the Chrome export matches the checked-in golden file
// byte for byte. Regenerate with UPDATE_GOLDEN=1 go test ./internal/obs.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/chrome_golden.json"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export diverged from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestChromeValidJSON: the export parses as a JSON array of objects with
// the trace_event required keys.
func TestChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(events) != 8 {
		t.Fatalf("want 8 events, got %d", len(events))
	}
	for i, e := range events {
		for _, k := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("event %d missing %q: %v", i, k, e)
			}
		}
		if ph := e["ph"]; ph == "X" {
			if _, ok := e["dur"]; !ok {
				t.Errorf("span %d missing dur: %v", i, e)
			}
		}
	}
	// The nested explore span: 30µs starting at 10µs.
	if events[1]["ts"] != 10.0 || events[1]["dur"] != 30000.0/1000 {
		t.Errorf("explore span mistimed: %v", events[1])
	}
	// Track assignment.
	if events[5]["tid"] != 3.0 || events[6]["tid"] != 3.0 {
		t.Errorf("track-3 events on wrong track: %v / %v", events[5], events[6])
	}
}

// TestChromeByteIdentity: two identical recordings export identical bytes.
func TestChromeByteIdentity(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recordings exported different bytes")
	}
}

// TestTextLog: deterministic line format, spans with dur first.
func TestTextLog(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 8 {
		t.Errorf("want 8 lines:\n%s", out)
	}
	for _, want := range []string{
		"mapper.explore", "dur=30µs", "route=+1", "faults.link-cut", "wire=7", "election.mapper", "host=U",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text log lacks %q:\n%s", want, out)
		}
	}
}

// TestNilTracer: every method is a no-op on nil, and the writers emit
// valid empty output.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Begin("c", "n", 0)
	tr.End(1)
	tr.Instant("c", "n", 0)
	tr.Span("c", "n", 0, 1)
	tr.OnTrack(2).Span("c", "n", 0, 1)
	tr.OnTrack(2).Instant("c", "n", 0)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Errorf("nil tracer chrome output invalid: %v %s", err, buf.Bytes())
	}
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRegistry: registration idempotence, value accumulation, histogram
// bucketing, nil safety, sorted text rendering.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probe.window.submitted")
	if r.Counter("probe.window.submitted") != c {
		t.Error("re-registration returned a different counter")
	}
	c.Add(3)
	c.Inc()
	ns := r.Counter("probe.window.timeout.cost.ns")
	ns.AddDuration(1500 * time.Nanosecond)
	g := r.Gauge("probe.window.inflight.max")
	g.SetMax(4)
	g.SetMax(2) // no regression
	h := r.Histogram("probe.window.miss.wait", []time.Duration{time.Microsecond, 10 * time.Microsecond})
	h.Observe(500 * time.Nanosecond)
	h.Observe(5 * time.Microsecond)
	h.Observe(time.Second) // overflow
	if c.Value() != 4 || ns.DurationValue() != 1500*time.Nanosecond || g.Value() != 4 {
		t.Errorf("values: c=%d ns=%v g=%d", c.Value(), ns.DurationValue(), g.Value())
	}
	if h.N() != 3 || h.Sum() != time.Second+5*time.Microsecond+500*time.Nanosecond {
		t.Errorf("histogram: n=%d sum=%v", h.N(), h.Sum())
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"probe.window.submitted 4",
		"probe.window.timeout.cost.ns 1500 (1.5µs)",
		"probe.window.inflight.max 4",
		"probe.window.miss.wait count=3",
		"le(1µs)=1", "le(10µs)=1", "overflow=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics text lacks %q:\n%s", want, out)
		}
	}

	var nilReg *Registry
	nc := nilReg.Counter("x")
	nc.Add(1)
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("z", DefaultBuckets()).Observe(time.Millisecond)
	if nc.Value() != 0 {
		t.Error("nil registry counter accumulated")
	}
	if err := nilReg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryTextByteIdentity: two identically-fed registries render
// identical bytes (the map iteration is sorted away).
func TestRegistryTextByteIdentity(t *testing.T) {
	feed := func() *Registry {
		r := NewRegistry()
		for _, n := range []string{"z.last", "a.first", "m.middle", "k.ns"} {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("g.b").Set(2)
		r.Gauge("g.a").Set(1)
		r.Histogram("h.x", DefaultBuckets()).Observe(3 * time.Microsecond)
		return r
	}
	var a, b bytes.Buffer
	if err := feed().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := feed().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("registry text nondeterministic:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// TestMetricsFastPathZeroAlloc: the runtime half of the zero-allocation
// contract — the static half is sanlint's hotpath analyzer over the
// //sanlint:hotpath annotations on these methods.
func TestMetricsFastPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist", DefaultBuckets())
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(2)
		c.Inc()
		c.AddDuration(time.Microsecond)
		g.Set(7)
		g.SetMax(9)
		h.Observe(3 * time.Millisecond)
		nilC.Inc()
	}); n != 0 {
		t.Errorf("metrics fast path allocates: %v allocs/op", n)
	}
}

// TestHistogramBadBounds: non-ascending bounds are a programming error.
func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on descending bounds")
		}
	}()
	NewRegistry().Histogram("bad", []time.Duration{2, 1})
}

// TestRegistryIteration: EachCounter/EachGauge visit every metric in
// sorted name order, and nil registries no-op — the contract sanmapd's
// metrics snapshot relies on.
func TestRegistryIteration(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(3)
	reg.Counter("a.first").Inc()
	reg.Counter("m.middle").Add(7)
	reg.Gauge("g.two").Set(2)
	reg.Gauge("g.one").Set(1)

	var cnames []string
	cvals := map[string]int64{}
	reg.EachCounter(func(n string, v int64) {
		cnames = append(cnames, n)
		cvals[n] = v
	})
	if want := []string{"a.first", "m.middle", "z.last"}; !reflect.DeepEqual(cnames, want) {
		t.Errorf("EachCounter order %v, want %v", cnames, want)
	}
	if cvals["a.first"] != 1 || cvals["m.middle"] != 7 || cvals["z.last"] != 3 {
		t.Errorf("counter values %v", cvals)
	}

	var gnames []string
	reg.EachGauge(func(n string, v int64) { gnames = append(gnames, n) })
	if want := []string{"g.one", "g.two"}; !reflect.DeepEqual(gnames, want) {
		t.Errorf("EachGauge order %v, want %v", gnames, want)
	}

	var nilReg *Registry
	nilReg.EachCounter(func(string, int64) { t.Error("nil registry visited a counter") })
	nilReg.EachGauge(func(string, int64) { t.Error("nil registry visited a gauge") })
}
