// Package obs is the repo's unified observability layer: one span tracer
// and one metrics registry that every subsystem instruments against,
// instead of the bespoke counters and ad-hoc log hooks that grew alongside
// the mapper, the probe window, the fault injector and the election mode.
// The paper's own evaluation is instrumentation-driven — Fig 8 records the
// model graph "after a frontier switch was explored", §6 compares probe
// counts and mapping latencies — and this package is where those numbers
// come from.
//
// # Virtual time only
//
// Everything in this package is keyed to the simulation's virtual clock
// (time.Duration offsets from the start of a run), never the wall clock.
// A Tracer never calls time.Now and a Registry never timestamps anything
// on its own: callers pass the transport's Clock() explicitly. That is
// what keeps telemetry inside the repo's headline reproducibility
// property — two runs with the same seed emit byte-identical trace files,
// which is what makes golden-trace CI lanes possible (see `make
// trace-smoke`). sanlint's determinism analyzer enforces the negative
// half of the contract.
//
// # Span taxonomy
//
// Spans and instant events carry a category (the subsystem) and a name
// (the phase or event), both lowercase:
//
//   - cat "mapper": spans "explore-phase" (frontier drain), "explore"
//     (one frontier switch), "prune", "sweep" (heal verification);
//     instants "probe", "discover", "merge", "prune", "explore-done",
//     "pipeline".
//   - cat "heal": instants for the self-healing fault log —
//     "contradiction", "re-explore", "edge-drop", "unreachable-drop",
//     "budget-exhausted", "suspect-edge".
//   - cat "faults": one instant per injector record — structural events
//     ("link-cut", "switch-down", ...), probe-level faults ("probe-loss",
//     "probe-trunc", "cross-collision") and their no-op variants.
//   - cat "election": per-participant spans "mapper" (one per host, on
//     its own track) and instants "passivate", "resume", "crash",
//     "complete", "lead".
//   - cat "watch": per-epoch spans of the sanwatch operational loop.
//
// # Metric naming scheme
//
// Metric names are dotted lowercase paths, most-general first:
// <subsystem>.<object>.<measure>[.<unit>]. Counters that accumulate
// virtual time carry a ".ns" suffix and are read back with
// Counter.DurationValue. Current names include:
//
//	probe.window.submitted        probes handed to the transport
//	probe.window.cache.hits       probes answered from the response cache
//	probe.window.retries          re-submissions after a miss
//	probe.window.budget.denied    retries suppressed by the route budget
//	probe.window.inflight.max     in-flight high-water mark (gauge)
//	probe.window.timeout.cost.ns  virtual time lost to misses
//	probe.window.backoff.wait.ns  portion of the above spent in backoff
//	probe.window.miss.wait        histogram of per-miss waits
//	mapper.explorations           frontier switches explored
//	mapper.merges / mapper.pruned / mapper.eliminated
//	mapper.contradictions / mapper.reexplored
//	mapper.explore.time           histogram of per-exploration spans
//	faults.events.applied / faults.events.noop
//	faults.probe.loss / faults.probe.trunc / faults.probe.cross
//	election.passivated / election.crashed / election.completed
//	election.transfers            leadership transfers after a crash
//
// # The zero-allocation contract
//
// Registration (Registry.Counter, Gauge, Histogram) may allocate freely:
// it happens once, at setup. The returned handles are the hot-path API —
// Counter.Add, Gauge.SetMax, Histogram.Observe are annotated
// //sanlint:hotpath and allocate nothing: no interface boxing, no map
// lookups, no lazy registration. Every handle method is nil-receiver
// safe, so instrumented code needs no "is telemetry on?" branches and the
// un-instrumented configuration costs one predictable nil check. The
// contract is enforced twice: statically by sanlint's hotpath analyzer
// and at runtime by testing.AllocsPerRun gates in obs_test.go.
//
// # Exports
//
// Tracer.WriteChrome emits the Chrome trace_event JSON array format,
// loadable in chrome://tracing and https://ui.perfetto.dev; WriteText is
// the deterministic line-oriented log. Registry.WriteText renders every
// metric sorted by name. The Flags helper gives the sanmap, sanexp and
// sanwatch commands their common -trace/-metrics/-cpuprofile/-memprofile
// surface. See OBSERVABILITY.md for the user-facing guide.
package obs
