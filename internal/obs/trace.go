package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Arg is one key/value annotation on a trace event. Values are rendered
// eagerly at the instrumentation site, so the export shows exactly what
// the site recorded and the writers need no reflection.
type Arg struct {
	Key string
	Val string
}

// String builds an Arg with a literal string value.
func String(key, val string) Arg { return Arg{Key: key, Val: val} }

// Int builds an Arg from an int.
func Int(key string, v int) Arg { return Arg{Key: key, Val: strconv.Itoa(v)} }

// Int64 builds an Arg from an int64.
func Int64(key string, v int64) Arg { return Arg{Key: key, Val: strconv.FormatInt(v, 10)} }

// Duration builds an Arg from a virtual-time duration.
func Duration(key string, d time.Duration) Arg { return Arg{Key: key, Val: d.String()} }

// event is one recorded trace entry: a complete span (ph 'X') or an
// instant (ph 'i') on a logical track (Chrome thread id).
type event struct {
	ph   byte
	tid  int
	cat  string
	name string
	at   time.Duration
	dur  time.Duration // spans only; -1 while still open
	args []Arg
}

// Tracer records spans and instant events against the virtual clock. It
// holds everything in memory (runs are bounded and virtual) and writes on
// demand, so recording order — which is deterministic whenever the
// instrumented run is — fully determines the output bytes. A nil *Tracer
// is a valid no-op: every method checks the receiver, so call sites
// plumb one pointer through and never branch on "is tracing on?".
//
// A Tracer is not safe for concurrent use; like the transports it
// instruments, its concurrency is virtual (desim interleavings arrive
// strictly ordered).
type Tracer struct {
	events []event
	open   []int // indices of Begin spans awaiting End, innermost last
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Len reports the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Begin opens a span at virtual time at. Spans opened with Begin must be
// strictly nested; virtually-concurrent actors use Track.Span instead.
func (t *Tracer) Begin(cat, name string, at time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.open = append(t.open, len(t.events))
	t.events = append(t.events, event{ph: 'X', tid: 1, cat: cat, name: name, at: at, dur: -1, args: args})
}

// End closes the innermost open span at virtual time at.
func (t *Tracer) End(at time.Duration) {
	if t == nil || len(t.open) == 0 {
		return
	}
	i := t.open[len(t.open)-1]
	t.open = t.open[:len(t.open)-1]
	if d := at - t.events[i].at; d > 0 {
		t.events[i].dur = d
	} else {
		t.events[i].dur = 0
	}
}

// Instant records a point event at virtual time at.
func (t *Tracer) Instant(cat, name string, at time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{ph: 'i', tid: 1, cat: cat, name: name, at: at, args: args})
}

// Span records a complete span with explicit bounds, bypassing the
// Begin/End stack — for callers whose spans interleave.
func (t *Tracer) Span(cat, name string, from, to time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	d := to - from
	if d < 0 {
		d = 0
	}
	t.events = append(t.events, event{ph: 'X', tid: 1, cat: cat, name: name, at: from, dur: d, args: args})
}

// Track is a view of a Tracer that records onto one Chrome thread id.
// Perfetto renders each tid as its own row, so virtually-concurrent
// actors — election mappers, sanwatch epochs — get separate, readable
// rows instead of overlapping spans on one track. A nil *Track (from a
// nil Tracer) is a valid no-op.
type Track struct {
	t   *Tracer
	tid int
}

// OnTrack returns the track for Chrome thread id tid (tid >= 1; the
// default methods record on track 1).
func (t *Tracer) OnTrack(tid int) *Track {
	if t == nil {
		return nil
	}
	return &Track{t: t, tid: tid}
}

// Span records a complete span on this track.
func (tr *Track) Span(cat, name string, from, to time.Duration, args ...Arg) {
	if tr == nil {
		return
	}
	n := len(tr.t.events)
	tr.t.Span(cat, name, from, to, args...)
	tr.t.events[n].tid = tr.tid
}

// Instant records a point event on this track.
func (tr *Track) Instant(cat, name string, at time.Duration, args ...Arg) {
	if tr == nil {
		return
	}
	n := len(tr.t.events)
	tr.t.Instant(cat, name, at, args...)
	tr.t.events[n].tid = tr.tid
}

// micros renders a virtual-time offset in Chrome's microsecond unit with
// fixed nanosecond precision — pure integer arithmetic, so the encoding
// is platform- and run-independent.
func micros(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""` // unreachable: strings always marshal
	}
	return string(b)
}

// writeChromeEvent renders one event object. Key order is fixed, floats
// never appear (timestamps are integer-derived strings), and args keep
// their recording order, so the byte stream is deterministic.
func writeChromeEvent(w *bufio.Writer, e event) {
	fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"%c","ts":%s`, jstr(e.name), jstr(e.cat), e.ph, micros(e.at))
	if e.ph == 'X' {
		d := e.dur
		if d < 0 {
			d = 0 // span never closed: exported with zero duration
		}
		fmt.Fprintf(w, `,"dur":%s`, micros(d))
	}
	if e.ph == 'i' {
		w.WriteString(`,"s":"t"`)
	}
	fmt.Fprintf(w, `,"pid":1,"tid":%d`, e.tid)
	if len(e.args) > 0 {
		w.WriteString(`,"args":{`)
		for i, a := range e.args {
			if i > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%s:%s", jstr(a.Key), jstr(a.Val))
		}
		w.WriteByte('}')
	}
	w.WriteByte('}')
}

// WriteChrome emits the recorded events as a Chrome trace_event JSON
// array, loadable in chrome://tracing and Perfetto. Timestamps are the
// virtual-clock offsets in microseconds. A nil tracer writes an empty
// array, so sidecar plumbing needs no special case.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	if t != nil {
		for i, e := range t.events {
			if i > 0 {
				bw.WriteString(",")
			}
			bw.WriteString("\n")
			writeChromeEvent(bw, e)
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// FormatLine renders one event as a deterministic text log line: the
// virtual timestamp, a dotted cat.name label, then key=value args. It is
// the single text rendering of an event — WriteText and the legacy
// mapper.TraceEvent shim both call it.
func FormatLine(at time.Duration, cat, name string, args ...Arg) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-18s", at, cat+"."+name)
	for _, a := range args {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	return b.String()
}

// WriteText emits the recorded events as the deterministic text log, one
// FormatLine per event in recording order; spans carry a leading dur arg.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range t.events {
		if e.ph == 'X' {
			d := e.dur
			if d < 0 {
				d = 0
			}
			args := make([]Arg, 0, len(e.args)+1)
			args = append(args, Duration("dur", d))
			args = append(args, e.args...)
			fmt.Fprintln(bw, FormatLine(e.at, e.cat, e.name, args...))
			continue
		}
		fmt.Fprintln(bw, FormatLine(e.at, e.cat, e.name, e.args...))
	}
	return bw.Flush()
}
