// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations for the design choices DESIGN.md calls out. The benchmark
// numbers are host CPU time for running the algorithms over the simulator;
// the paper-comparable quantities (probe counts, simulated times) are
// reported as custom metrics: probes/op and sim-ms/op.
package sanmap_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sanmap/internal/cluster"
	"sanmap/internal/election"
	"sanmap/internal/experiments"
	"sanmap/internal/genspec"
	"sanmap/internal/loadsim"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
	"sanmap/internal/wormsim"
)

// reportMap attaches the paper-comparable metrics to a mapping result.
func reportMap(b *testing.B, m *mapper.Map) {
	b.ReportMetric(float64(m.Stats.Probes.TotalProbes()), "probes/op")
	b.ReportMetric(float64(m.Stats.Elapsed.Milliseconds()), "sim-ms/op")
}

// benchBerkeley is the Fig 6/7 master-mode benchmark body.
func benchBerkeley(b *testing.B, sys *cluster.System) {
	b.Helper()
	net := sys.Net
	h0 := sys.Mapper()
	depth := net.DepthBound(h0)
	var last *mapper.Map
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	reportMap(b, last)
}

// Fig 6 / Fig 7 (master column): Berkeley mapping of the three systems.
func BenchmarkMapMasterC(b *testing.B)   { benchBerkeley(b, cluster.CConfig(nil)) }
func BenchmarkMapMasterCA(b *testing.B)  { benchBerkeley(b, cluster.CAConfig(nil)) }
func BenchmarkMapMasterCAB(b *testing.B) { benchBerkeley(b, cluster.CABConfig(nil)) }

// benchPipelined compares the serial explore loop against the pipelined
// probe engine at increasing window sizes. The interesting metric is
// sim-ms/op: virtual mapping time collapses as the engine overlaps response
// timeouts (§5.2's dominant cost), while probes/op stays within the
// speculation overhead of the serial count.
func benchPipelined(b *testing.B, sys *cluster.System) {
	b.Helper()
	net := sys.Net
	h0 := sys.Mapper()
	depth := net.DepthBound(h0)
	for _, w := range []int{1, 8, 16} {
		name := "serial"
		if w > 1 {
			name = fmt.Sprintf("window%d", w)
		}
		b.Run(name, func(b *testing.B) {
			var last *mapper.Map
			for i := 0; i < b.N; i++ {
				sn := simnet.NewDefault(net)
				m, err := mapper.Run(sn.Endpoint(h0),
					mapper.WithDepth(depth), mapper.WithPipeline(w))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.StopTimer()
			reportMap(b, last)
			b.ReportMetric(float64(last.Stats.Pipeline.Submitted), "submitted/op")
		})
	}
}

// Tentpole acceptance: the pipelined engine vs the serial loop on C and on
// the full 100-node system (window >= 8 must at least halve sim-ms/op).
func BenchmarkPipelinedVsSerialC(b *testing.B)   { benchPipelined(b, cluster.CConfig(nil)) }
func BenchmarkPipelinedVsSerialCAB(b *testing.B) { benchPipelined(b, cluster.CABConfig(nil)) }

// Fig 7 (election column): election-mode mapping of subcluster C.
func BenchmarkMapElectionC(b *testing.B) {
	sys := cluster.CConfig(nil)
	depth := sys.Net.DepthBound(sys.Mapper())
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := election.Run(sys.Net, election.Config{
			Model:  simnet.CircuitModel,
			Timing: simnet.DefaultTiming(),
			Mapper: mapper.DefaultConfig(depth),
			Rng:    rand.New(rand.NewSource(int64(i) + 1)),
		})
		if err != nil {
			b.Fatal(err)
		}
		sim = float64(res.Elapsed.Milliseconds())
	}
	b.ReportMetric(sim, "sim-ms/op")
}

// Fig 8: the instrumented C+A+B run (snapshot overhead included).
func BenchmarkMapInstrumentedCAB(b *testing.B) {
	sys := cluster.CABConfig(nil)
	depth := sys.Net.DepthBound(sys.Mapper())
	var last *mapper.Map
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := simnet.NewDefault(sys.Net)
		m, err := mapper.Run(sn.Endpoint(sys.Mapper()),
			mapper.WithDepth(depth), mapper.WithSnapshots(true))
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	reportMap(b, last)
	b.ReportMetric(float64(len(last.Series)), "snapshots/op")
}

// Fig 9's hardest point: a single responding host on subcluster C (the
// full sweep lives in cmd/sanexp -fig 9).
func BenchmarkMapSingleResponderC(b *testing.B) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	var last *mapper.Map
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := simnet.NewDefault(sys.Net)
		for _, h := range sys.Net.Hosts() {
			if h != h0 {
				sn.SetResponder(h, false)
			}
		}
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	reportMap(b, last)
}

// Fig 10: the Myricom baseline on the three systems.
func benchMyricom(b *testing.B, sys *cluster.System) {
	b.Helper()
	net := sys.Net
	h0 := sys.Mapper()
	depth := net.DepthBound(h0)
	var last *myricom.Map
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := simnet.New(net, simnet.PacketModel, simnet.DefaultTiming())
		m, err := myricom.Run(sn.Endpoint(h0), myricom.DefaultConfig(depth))
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Stats.Total()), "probes/op")
	b.ReportMetric(float64(last.Stats.Elapsed.Milliseconds()), "sim-ms/op")
}

func BenchmarkMyricomC(b *testing.B)   { benchMyricom(b, cluster.CConfig(nil)) }
func BenchmarkMyricomCAB(b *testing.B) { benchMyricom(b, cluster.CABConfig(nil)) }

// §5.5: UP*/DOWN* route computation over the mapped 100-node system.
func BenchmarkRoutesCAB(b *testing.B) {
	sys := cluster.CABConfig(nil)
	sn := simnet.NewDefault(sys.Net)
	m, err := mapper.Run(sn.Endpoint(sys.Mapper()), mapper.WithDepth(sys.Net.DepthBound(sys.Mapper())))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routes.Compute(m.Network, routes.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------------- ablations

// Ablation 1 (§3.3 merging styles): production object-merge vs the §3.1
// label algorithm on a small network (the label variant is exponential).
func BenchmarkAblationLabelsVsMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := topology.MustRandomConnected(3, 4, 1, rng)
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)
	if depth > 8 {
		depth = 8
	}
	b.Run("merge", func(b *testing.B) {
		var last *mapper.Map
		for i := 0; i < b.N; i++ {
			sn := simnet.NewDefault(net)
			m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.StopTimer()
		reportMap(b, last)
	})
	b.Run("labels", func(b *testing.B) {
		var last *mapper.Map
		for i := 0; i < b.N; i++ {
			sn := simnet.NewDefault(net)
			m, err := mapper.LabelRun(sn.Endpoint(h0), depth)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.StopTimer()
		reportMap(b, last)
	})
}

// Ablation 2: replicate policy (frontier dedup vs retry vs explore-all).
func BenchmarkAblationPolicy(b *testing.B) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	for _, pc := range []struct {
		name   string
		policy mapper.ReplicatePolicy
	}{
		{"dedup", mapper.DedupFrontier},
		{"retry-unknown", mapper.RetryUnknown},
		{"explore-all", mapper.ExploreAll},
	} {
		b.Run(pc.name, func(b *testing.B) {
			var last *mapper.Map
			for i := 0; i < b.N; i++ {
				sn := simnet.NewDefault(sys.Net)
				m, err := mapper.Run(sn.Endpoint(h0),
					mapper.WithDepth(depth), mapper.WithPolicy(pc.policy))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.StopTimer()
			reportMap(b, last)
		})
	}
}

// Ablation 3 (§3.3 probe heuristics): small-turns-first + safe elimination
// vs a naive −7..+7 scan with no elimination. The paper conjectures "the
// total number of messages can be reduced by factors of 2 or more based
// upon our experience with cleverly choosing the sequence that switch ports
// are probed".
func BenchmarkAblationProbeOrder(b *testing.B) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	for _, pc := range []struct {
		name      string
		order     mapper.TurnOrder
		eliminate bool
	}{
		{"heuristic+elim", mapper.SmallTurnsFirst, true},
		{"naive", mapper.NaiveScan, false},
	} {
		b.Run(pc.name, func(b *testing.B) {
			var last *mapper.Map
			for i := 0; i < b.N; i++ {
				sn := simnet.NewDefault(sys.Net)
				m, err := mapper.Run(sn.Endpoint(h0),
					mapper.WithDepth(depth), mapper.WithTurnOrder(pc.order),
					mapper.WithEliminateProbes(pc.eliminate))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.StopTimer()
			reportMap(b, last)
		})
	}
}

// Ablation 4 (§2.3.1 collision models): same mapping under the three worm
// semantics.
func BenchmarkAblationCollisionModel(b *testing.B) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	for _, mc := range []struct {
		name  string
		model simnet.Model
	}{
		{"packet", simnet.PacketModel},
		{"cutthrough", simnet.CutThroughModel},
		{"circuit", simnet.CircuitModel},
	} {
		b.Run(mc.name, func(b *testing.B) {
			var last *mapper.Map
			for i := 0; i < b.N; i++ {
				sn := simnet.New(sys.Net, mc.model, simnet.DefaultTiming())
				m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.StopTimer()
			reportMap(b, last)
		})
	}
}

// Ablation 5 (§3.1.4 depth bound): the paper's Q+D versus the packet-proof
// 2D+1 versus a too-deep bound.
func BenchmarkAblationDepth(b *testing.B) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	net := sys.Net
	q, _ := net.Q(h0)
	d := net.Diameter()
	for _, dc := range []struct {
		name  string
		depth int
	}{
		{"Q+D", q + d},
		{"2D+1", 2*d + 1},
		{"Q+D+4", q + d + 4},
	} {
		b.Run(dc.name, func(b *testing.B) {
			var last *mapper.Map
			for i := 0; i < b.N; i++ {
				sn := simnet.NewDefault(net)
				m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(dc.depth))
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.StopTimer()
			reportMap(b, last)
		})
	}
}

// Extension (§6): the randomized coupon-collector hybrid vs plain BFS on an
// expander-ish topology.
func BenchmarkRandomizedHybrid(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := topology.MustHypercube(4, 1, rng)
	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0)
	b.Run("bfs", func(b *testing.B) {
		var last *mapper.Map
		for i := 0; i < b.N; i++ {
			sn := simnet.NewDefault(net)
			m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.StopTimer()
		reportMap(b, last)
	})
	b.Run("hybrid", func(b *testing.B) {
		var last *mapper.Map
		for i := 0; i < b.N; i++ {
			sn := simnet.NewDefault(net)
			m, err := mapper.RandomizedRun(sn.Endpoint(h0), mapper.RandomizedConfig{
				Config:       mapper.DefaultConfig(depth),
				CouponProbes: 200,
				Rng:          rand.New(rand.NewSource(int64(i))),
			})
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.StopTimer()
		reportMap(b, last)
	})
}

// BenchmarkRandomizedTrials runs batches of independent hybrid trials
// through the experiments.Sweep worker pool, serial vs parallel — the
// randomized-trial counterpart of the Fig 7/9/10 sweeps. Results are
// deterministic per trial seed, so both lanes do identical work.
func BenchmarkRandomizedTrials(b *testing.B) {
	const trials, coupons, seed = 8, 200, 3
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			var probes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiments.RandomizedTrials(trials, coupons, seed, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				probes = 0
				for _, r := range res {
					probes += r.Probes
				}
			}
			b.ReportMetric(float64(probes), "probes/op")
		})
	}
}

// ------------------------------------------------------------ micro-level

// BenchmarkEvalRoute measures the simulator's inner loop (the steady-state
// regime: repeated probes from one source, as the mapper's frontier issues
// them). The alloc report locks the zero-allocation property.
func BenchmarkEvalRoute(b *testing.B) {
	sys := cluster.CABConfig(nil)
	sn := simnet.NewDefault(sys.Net)
	h0 := sys.Mapper()
	route := simnet.Route{1, -2, 3, -1, 2, -3, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.Eval(h0, route)
	}
}

// BenchmarkEvalRouteColdCache is the same walk with the route-prefix memo
// defeated every iteration (alternating sources), measuring the full
// traversal cost rather than the exact-repeat fast path.
func BenchmarkEvalRouteColdCache(b *testing.B) {
	sys := cluster.CABConfig(nil)
	sn := simnet.NewDefault(sys.Net)
	hosts := sys.Net.Hosts()
	h0, h1 := hosts[0], hosts[1]
	route := simnet.Route{1, -2, 3, -1, 2, -3, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			sn.Eval(h0, route)
		} else {
			sn.Eval(h1, route)
		}
	}
}

// fatTree1k is the PR-6 scale lane's fabric: 960 leaves, one host each,
// 44 auto-sized spines — 1004 switches, the smallest configuration past
// the 1k-switch bar. Deterministic (nil rng), so probe counts are stable.
func fatTree1k() *topology.Network {
	return topology.MustFatTree2(topology.FatTree2Spec{LeafSwitches: 960, HostsPerLeaf: 1}, nil)
}

// BenchmarkMapFatTree1k is the fattree-1k lane: a full Berkeley mapping of
// the 1004-switch fat-tree. On a fat tree the diameter (6) bounds route
// depth far better than the generic Q+D bound, which is what keeps the
// probe count in the low hundreds of thousands.
func BenchmarkMapFatTree1k(b *testing.B) {
	net := fatTree1k()
	h0 := net.Hosts()[0]
	depth := net.Diameter() + 2
	var last *mapper.Map
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	reportMap(b, last)
}

// BenchmarkIndexBFS1k measures one arena BFS over the 1k fabric's CSR
// index — the inner loop of ChooseRoot, Diameter and the mapper's
// depth selection. ReportAllocs doubles as the zero-alloc gate.
func BenchmarkIndexBFS1k(b *testing.B) {
	net := fatTree1k()
	ix := net.Index()
	dist := make([]int32, ix.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.BFSInto(0, dist)
	}
}

// BenchmarkIndexDiameter1k is the all-pairs eccentricity sweep on the 1k
// fabric, the heaviest pure-graph analysis the tools run.
func BenchmarkIndexDiameter1k(b *testing.B) {
	net := fatTree1k()
	ix := net.Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := ix.Diameter(); d != 6 {
			b.Fatalf("diameter %d, want 6", d)
		}
	}
}

// BenchmarkLoadReplay is the traffic lane (WORKLOADS.md): replay a seeded
// uniform plan over UP*/DOWN* routes on a 24-switch fat tree with the flat
// link-reservation engine. ns/op gates the loadsim hot loop against the
// committed baseline; worms/op doubles as a determinism canary — any drift
// in plan materialisation or replay arithmetic moves the count.
func BenchmarkLoadReplay(b *testing.B) {
	res, err := genspec.Build("fattree2:16x2,8", nil)
	if err != nil {
		b.Fatal(err)
	}
	net := res.Net
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	timing := simnet.DefaultTiming()
	plan := workload.NewPlan(net, workload.PlanConfig{
		Pattern:  workload.Uniform,
		Load:     0.3,
		MsgBytes: 512,
		Duration: time.Millisecond,
		ByteTime: timing.ByteTime,
		Seed:     1,
	})
	eng, err := loadsim.New(net, tab, timing, plan.MsgBytes)
	if err != nil {
		b.Fatal(err)
	}
	var rep *loadsim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = eng.Run(plan)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Sent), "worms/op")
	b.ReportMetric(float64(rep.Delivered), "delivered/op")
}

// BenchmarkDepthBound measures the Q+D computation (min-cost flows per
// node) on the full system.
func BenchmarkDepthBound(b *testing.B) {
	sys := cluster.CABConfig(nil)
	h0 := sys.Mapper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Net.DepthBound(h0)
	}
}

// Wormhole-deadlock demonstration (§5.5's motivation): permutation traffic
// on a torus under hold-and-wait switching, naive vs UP*/DOWN* routes.
func BenchmarkWormholePermutation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := topology.MustTorus(4, 4, 1, rng)
	naive, err := routes.ShortestPaths(net)
	if err != nil {
		b.Fatal(err)
	}
	safe, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	hosts := net.Hosts()
	for _, bc := range []struct {
		name string
		tab  *routes.Table
	}{{"shortest", naive}, {"updown", safe}} {
		b.Run(bc.name, func(b *testing.B) {
			// Precompute every shift's injection list so the timed loop
			// measures the hold-and-wait simulation, not route-table lookups.
			type inj struct {
				src topology.NodeID
				r   simnet.Route
			}
			var shifts [][]inj
			for shift := 1; shift < len(hosts); shift++ {
				var list []inj
				for j, src := range hosts {
					dst := hosts[(j+shift)%len(hosts)]
					if dst == src {
						continue
					}
					r, ok := bc.tab.Route(src, dst)
					if !ok {
						b.Fatalf("no route %v -> %v", src, dst)
					}
					list = append(list, inj{src, r})
				}
				shifts = append(shifts, list)
			}
			b.ResetTimer()
			dead := 0
			for i := 0; i < b.N; i++ {
				dead = 0
				for _, list := range shifts {
					s := wormsim.New(net, simnet.DefaultTiming())
					for _, in := range list {
						if err := s.Inject(0, in.src, in.r); err != nil {
							b.Fatal(err)
						}
					}
					dead += s.Run().Deadlocked
				}
			}
			b.ReportMetric(float64(dead), "deadlocks/op")
		})
	}
}

// §6's hardware thought experiment: self-identifying switches vs the
// anonymous-switch Berkeley algorithm on the same cluster — what anonymity
// costs in probes.
func BenchmarkOracleVsBerkeley(b *testing.B) {
	sys := cluster.CConfig(nil)
	h0 := sys.Mapper()
	depth := sys.Net.DepthBound(h0)
	b.Run("berkeley", func(b *testing.B) {
		var last *mapper.Map
		for i := 0; i < b.N; i++ {
			sn := simnet.NewDefault(sys.Net)
			m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(depth))
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.StopTimer()
		reportMap(b, last)
	})
	b.Run("oracle", func(b *testing.B) {
		var last *mapper.Map
		for i := 0; i < b.N; i++ {
			sn := simnet.NewDefault(sys.Net)
			sn.EnableSelfID()
			m, err := mapper.OracleRun(sn.Endpoint(h0), depth)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
		b.StopTimer()
		reportMap(b, last)
	})
}
