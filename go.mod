module sanmap

go 1.22
