package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sanmap/internal/genspec"
	"sanmap/internal/simnet"
	"sanmap/internal/workload"
)

// smokeOptions are the pinned flags of the load-smoke CI lane; the golden
// file was generated with exactly these (equivalently: sanload with all
// flags at their defaults).
func smokeOptions() options {
	return options{
		gen: "fattree2:8x2", pattern: "uniform", load: 0.3, msg: 512,
		duration: 500 * time.Microsecond, seed: 1, cuts: 2, top: 5, place: 8,
	}
}

// TestLoadSmokeGolden: the default run must match the checked-in golden
// report byte for byte. Regenerate after an intentional change with:
//
//	go run ./cmd/sanload > cmd/sanload/testdata/load-smoke.txt
func TestLoadSmokeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(smokeOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "load-smoke.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("report diverges from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), golden)
	}
}

// TestHealCongestionAndPlacement: the report must show the heal's cost —
// worms lost under the stale table, congestion up on the links around the
// cuts — and a placement win over identity.
func TestHealCongestionAndPlacement(t *testing.T) {
	var buf bytes.Buffer
	if err := run(smokeOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	stale := section(out, "== stale table ==")
	if !strings.Contains(stale, "lost=115") {
		t.Errorf("stale section lost no worms:\n%s", stale)
	}
	cong := line(out, "congestion on ")
	if cong == "" || !strings.Contains(cong, "+") {
		t.Errorf("no congestion increase around the cuts: %q", cong)
	}
	plc := line(out, "tasks=")
	if plc == "" || !strings.Contains(plc, "optimal=true") {
		t.Errorf("placement did not complete: %q", plc)
	}
}

// TestPlanRoundTrip: -plan-out writes a sanplan v1 file that parses back
// into the identical schedule.
func TestPlanRoundTrip(t *testing.T) {
	o := smokeOptions()
	o.cuts, o.place = 0, 0
	o.planOut = filepath.Join(t.TempDir(), "plan.txt")
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := genspec.Build(o.gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(o.planOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := workload.ReadPlan(res.Net, f)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.NewPlan(res.Net, workload.PlanConfig{
		Pattern: workload.Uniform, Load: o.load, MsgBytes: o.msg,
		Duration: o.duration, ByteTime: simnet.DefaultTiming().ByteTime, Seed: o.seed,
	})
	if got.TotalSends() != want.TotalSends() || got.Seed != want.Seed {
		t.Fatalf("round-trip mismatch: %d/%d sends", got.TotalSends(), want.TotalSends())
	}
	for i := range want.Sends {
		for k, s := range want.Sends[i] {
			if got.Sends[i][k] != s {
				t.Fatalf("host %d send %d: %+v != %+v", i, k, got.Sends[i][k], s)
			}
		}
	}
}

// TestScaleMillionWorms is the acceptance run: a 1024-switch fat-tree
// replays over a million worms through the full heal pipeline, twice, with
// byte-identical reports; the healed replay must congest the links around
// the cuts at least as much as the healthy one did.
func TestScaleMillionWorms(t *testing.T) {
	if testing.Short() {
		t.Skip("scale acceptance run (~25s); skipped under -short")
	}
	o := options{
		gen: "fattree2:960x1,64", pattern: "uniform", load: 0.3, msg: 512,
		duration: 11 * time.Millisecond, seed: 1, cuts: 2, top: 5, place: 8,
	}
	var a, b bytes.Buffer
	if err := run(o, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(o, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed, different reports at scale")
	}
	out := a.String()
	var sends int
	if _, err := sscanLine(out, "plan: ", "sends=", &sends); err != nil {
		t.Fatal(err)
	}
	if sends < 1_000_000 {
		t.Errorf("replayed %d worms, want >= 1M", sends)
	}
	cong := line(out, "congestion on ")
	if cong == "" || strings.Contains(cong, "(-") {
		t.Errorf("healed congestion below healthy on the cut-adjacent links: %q", cong)
	}
	t.Logf("%s", cong)
}

// section returns the text between the named header and the next one.
func section(out, header string) string {
	_, rest, ok := strings.Cut(out, header)
	if !ok {
		return ""
	}
	if i := strings.Index(rest, "== "); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// line returns the first line containing the marker.
func line(out, marker string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, marker) {
			return l
		}
	}
	return ""
}

// sscanLine finds the line starting with prefix and parses the integer
// following key.
func sscanLine(out, prefix, key string, dst *int) (string, error) {
	l := line(out, prefix)
	_, v, ok := strings.Cut(l, key)
	if !ok {
		return l, os.ErrNotExist
	}
	if i := strings.IndexByte(v, ' '); i >= 0 {
		v = v[:i]
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	*dst = n
	return l, nil
}
