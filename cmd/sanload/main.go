// Command sanload measures route quality under load: it replays a seeded
// traffic plan over a fabric's UP*/DOWN* routes and reports throughput,
// latency percentiles, per-link congestion and deadlock-freedom — on the
// healthy map, on the stale route table after link cuts, and on the healed
// routes after an incremental remap — then runs the branch-and-bound
// placement optimizer over the measured demand matrix. Heal cost becomes a
// measured quantity: lost worms under the stale table, remap probe count,
// and the congestion shift onto the links around the cuts.
//
// Usage:
//
//	sanload [-gen spec] [-pattern uniform|hotspot|permutation] [-load F]
//	        [-msg N] [-duration D] [-seed N] [-cuts N] [-top K] [-place N]
//	        [-plan-out file] [-trace file.json] [-metrics file]
//
// All phases are deterministic: the same flags always print the same bytes
// (the load-smoke CI lane diffs a golden run). See WORKLOADS.md for the
// report format and the sanplan v1 plan file format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"sanmap/internal/faults"
	"sanmap/internal/genspec"
	"sanmap/internal/loadsim"
	"sanmap/internal/mapper"
	"sanmap/internal/obs"
	"sanmap/internal/place"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
	"sanmap/internal/workload"
)

// options collects one run's parameters, so tests can invoke run directly.
type options struct {
	gen      string
	pattern  string
	load     float64
	msg      int
	duration time.Duration
	seed     uint64
	cuts     int
	top      int
	place    int
	planOut  string
	reg      *obs.Registry
	tracer   *obs.Tracer
}

func main() {
	var o options
	flag.StringVar(&o.gen, "gen", "fattree2:8x2", "fabric generator spec (see sangen -list)")
	flag.StringVar(&o.pattern, "pattern", "uniform", "traffic pattern: uniform, hotspot, permutation")
	flag.Float64Var(&o.load, "load", 0.3, "offered load per host as a fraction of link bandwidth")
	flag.IntVar(&o.msg, "msg", 512, "payload bytes per worm")
	flag.DurationVar(&o.duration, "duration", 500*time.Microsecond, "injection horizon per host (virtual time)")
	var seed int64
	flag.Int64Var(&seed, "seed", 1, "seed for the plan, the cuts and the placement baseline")
	flag.IntVar(&o.cuts, "cuts", 2, "permanent link cuts to inject (0 skips the fault/heal phases)")
	flag.IntVar(&o.top, "top", 5, "congested links to list per report")
	flag.IntVar(&o.place, "place", 8, "heaviest-communicating tasks the placement phase optimizes (0 skips)")
	flag.StringVar(&o.planOut, "plan-out", "", "also write the traffic plan (sanplan v1) to this file")
	tele := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	o.seed = uint64(seed)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "sanload: %v\n", err)
		os.Exit(1)
	}
	if err := tele.Begin(); err != nil {
		fail(err)
	}
	o.reg, o.tracer = tele.Metrics, tele.Tracer
	if err := run(o, os.Stdout); err != nil {
		fail(err)
	}
	if err := tele.Finish(); err != nil {
		fail(err)
	}
}

// run executes the full pipeline and writes the deterministic report.
func run(o options, w io.Writer) error {
	var pat workload.Pattern
	switch o.pattern {
	case "uniform":
		pat = workload.Uniform
	case "hotspot":
		pat = workload.Hotspot
	case "permutation":
		pat = workload.Permutation
	default:
		return fmt.Errorf("unknown pattern %q", o.pattern)
	}
	res, err := genspec.Build(o.gen, nil)
	if err != nil {
		return err
	}
	net := res.Net
	timing := simnet.DefaultTiming()
	fmt.Fprintf(w, "fabric %s: %d hosts, %d switches, %d wires\n",
		o.gen, net.NumHosts(), net.NumSwitches(), net.NumWires())

	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		return err
	}
	plan := workload.NewPlan(net, workload.PlanConfig{
		Pattern: pat, Load: o.load, MsgBytes: o.msg, Duration: o.duration,
		ByteTime: timing.ByteTime, Seed: o.seed,
	})
	fmt.Fprintf(w, "plan: pattern=%s load=%.2f msg=%d duration=%v sends=%d seed=%d\n",
		pat, o.load, o.msg, o.duration, plan.TotalSends(), o.seed)
	if o.planOut != "" {
		f, err := os.Create(o.planOut)
		if err != nil {
			return err
		}
		if err := plan.Write(net, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	eng, err := loadsim.New(net, tab, timing, o.msg)
	if err != nil {
		return err
	}
	eng.Instrument(o.reg)
	fmt.Fprintf(w, "== healthy routes ==\n")
	healthy, err := eng.Run(plan)
	if err != nil {
		return err
	}
	if err := healthy.WriteText(w, net, o.top); err != nil {
		return err
	}

	if o.cuts > 0 {
		if err := healSweep(o, w, net, timing, eng, plan, healthy); err != nil {
			return err
		}
	}
	if o.place > 0 {
		if err := placement(o, w, eng, net); err != nil {
			return err
		}
	}
	return nil
}

// healSweep runs the fault → stale → remap → healed phases: map the
// pristine fabric, cut links, replay against the now-stale table, heal the
// map incrementally, recompute routes on the survivor and replay again.
func healSweep(o options, w io.Writer, net *topology.Network, timing simnet.Timing,
	stale *loadsim.Engine, plan *workload.Plan, healthy *loadsim.Report) error {

	h0 := net.Hosts()[0]
	depth := net.DepthBound(h0) + net.NumSwitches()
	sn := simnet.NewDefault(net)
	ep := sn.Endpoint(h0)
	sess, err := mapper.NewSession(ep,
		mapper.WithDepth(depth), mapper.WithConfirm(2),
		mapper.WithTracer(o.tracer), mapper.WithMetrics(o.reg))
	if err != nil {
		return err
	}
	if _, err := sess.Map(); err != nil {
		return fmt.Errorf("initial map: %w", err)
	}
	mapProbes := ep.Stats().SwitchProbes + ep.Stats().HostProbes

	sched := faults.Generate(net, o.seed, faults.Profile{Cuts: o.cuts, Protect: h0})
	inj := faults.NewInjector(sn, sched)
	ends := make(map[topology.NodeID]bool)
	fmt.Fprintf(w, "== faults ==\n")
	for _, ev := range sched.Events {
		wire := net.WireByIndex(ev.Wire)
		fmt.Fprintf(w, "cut wire %d sw%d/%d--sw%d/%d\n",
			ev.Wire, wire.A.Node, wire.A.Port, wire.B.Node, wire.B.Port)
		ends[wire.A.Node] = true
		ends[wire.B.Node] = true
	}
	inj.ApplyAll()

	fmt.Fprintf(w, "== stale table ==\n")
	stale.Revalidate()
	staleRep, err := stale.Run(plan)
	if err != nil {
		return err
	}
	if err := staleRep.WriteText(w, net, o.top); err != nil {
		return err
	}

	healed, err := sess.Remap()
	if err != nil {
		return fmt.Errorf("remap: %w", err)
	}
	healProbes := ep.Stats().SwitchProbes + ep.Stats().HostProbes - mapProbes
	fmt.Fprintf(w, "== heal ==\nremap: probes=%d confidence=%.2f suspects=%d partial=%v\n",
		healProbes, healed.Confidence, len(healed.Suspect), healed.Partial)

	tab2, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		return fmt.Errorf("healed routes: %w", err)
	}
	eng2, err := loadsim.New(net, tab2, timing, plan.MsgBytes)
	if err != nil {
		return err
	}
	eng2.Instrument(o.reg)
	fmt.Fprintf(w, "== healed routes ==\n")
	healedRep, err := eng2.Run(plan)
	if err != nil {
		return err
	}
	if err := healedRep.WriteText(w, net, o.top); err != nil {
		return err
	}

	// The heal's congestion bill: the traffic that used the cut wires now
	// crowds the surviving links around them.
	adj := cutAdjacent(net, ends)
	hb, eb := healthy.BusyOn(adj), healedRep.BusyOn(adj)
	fmt.Fprintf(w, "congestion on %d links around the cuts: healthy=%v healed=%v (%+d%%)\n",
		len(adj), hb, eb, pctDelta(int64(hb), int64(eb)))
	return nil
}

// cutAdjacent lists the surviving wires incident to either endpoint switch
// of a cut wire — the links the detoured traffic must now share.
func cutAdjacent(net *topology.Network, ends map[topology.NodeID]bool) []int {
	var out []int
	seen := make(map[int]bool)
	net.WiresIndexed(func(idx int, w topology.Wire) {
		if seen[idx] || (!ends[w.A.Node] && !ends[w.B.Node]) {
			return
		}
		seen[idx] = true
		out = append(out, idx)
	})
	sort.Ints(out)
	return out
}

// placement optimizes the placement of the heaviest-communicating tasks
// from the measured demand matrix and compares against the identity and
// random baselines.
func placement(o options, w io.Writer, eng *loadsim.Engine, net *topology.Network) error {
	full := eng.Matrix()
	m := heaviest(full, o.place)
	if len(m.Hosts) < 2 {
		fmt.Fprintf(w, "== placement ==\nno measured traffic to place\n")
		return nil
	}
	tab, err := routes.Compute(net, routes.DefaultConfig())
	if err != nil {
		return err
	}
	res, err := place.Optimize(tab, m, place.DefaultConfig())
	if err != nil {
		return err
	}
	idCost, err := place.Cost(tab, m, place.Identity(m))
	if err != nil {
		return err
	}
	rndCost, err := place.Cost(tab, m, place.Shuffled(m, o.seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== placement ==\n")
	fmt.Fprintf(w, "tasks=%d identity=%d random=%d optimized=%d (%+d%% vs identity) expanded=%d optimal=%v\n",
		len(m.Hosts), idCost, rndCost, res.Cost, pctDelta(idCost, res.Cost), res.Expanded, res.Optimal)
	return nil
}

// heaviest restricts the demand matrix to the n highest-volume tasks
// (ties: host order), keeping the search tractable on big fabrics.
func heaviest(m *workload.Matrix, n int) *workload.Matrix {
	type hv struct {
		i   int
		vol int64
	}
	tot := make([]hv, len(m.Hosts))
	for i := range m.Hosts {
		tot[i].i = i
		for j := range m.Hosts {
			tot[i].vol += m.Bytes[i][j] + m.Bytes[j][i]
		}
	}
	sort.SliceStable(tot, func(a, b int) bool { return tot[a].vol > tot[b].vol })
	if n > len(tot) {
		n = len(tot)
	}
	keep := make([]int, 0, n)
	for _, t := range tot[:n] {
		if t.vol > 0 {
			keep = append(keep, t.i)
		}
	}
	sort.Ints(keep) // matrix rows stay in host order for determinism
	hosts := make([]topology.NodeID, len(keep))
	for k, i := range keep {
		hosts[k] = m.Hosts[i]
	}
	sub := workload.NewMatrix(hosts)
	for a, i := range keep {
		for b, j := range keep {
			sub.Bytes[a][b] = m.Bytes[i][j]
		}
	}
	return sub
}

// pctDelta returns the percent change from a to b, rounded toward zero.
func pctDelta(a, b int64) int64 {
	if a == 0 {
		return 0
	}
	return (b - a) * 100 / a
}
