// Command sangen generates system-area-network topologies in the textual
// format consumed by sanmap, and reports their analysis parameters (the
// quantities §3.1.4 of the paper defines: diameter D, probe bound Q, the
// unmappable set F).
//
// Usage:
//
//	sangen -gen now-cab -o cab.san
//	sangen -gen random:8,20,4 -seed 7 -analyze
//	sangen -gen fattree:6x4 -tail 2 -analyze      # adds a hostless F region
//	sangen -gen now-cab -analyze -parallel 8      # per-host Q table, 8 workers
//	sangen -list                                  # enumerate registered generators
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"sanmap/internal/experiments"
	"sanmap/internal/genspec"
	"sanmap/internal/topology"
)

func main() {
	gen := flag.String("gen", "now-c", "generator spec (see -list)")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "random seed for port embeddings")
	tail := flag.Int("tail", 0, "attach a hostless switch tail of this length (creates F)")
	loops := flag.Int("loops", 0, "add this many loopback plugs on free switch ports")
	analyze := flag.Bool("analyze", false, "print D, Q, |F| and other analysis parameters")
	parallel := flag.Int("parallel", 1, "worker pool size for the -analyze per-host Q table (0 = one per CPU); output is identical for any value")
	list := flag.Bool("list", false, "list registered generators and exit")
	flag.Parse()

	if *list {
		listGenerators(os.Stdout)
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	res, err := genspec.Build(*gen, rng)
	if err != nil {
		die("%v", err)
	}
	net := res.Net
	if *tail > 0 {
		sw := net.Switches()
		topology.WithTail(net, sw[rng.Intn(len(sw))], *tail, rng)
	}
	for i := 0; i < *loops; i++ {
		placed := false
		for _, s := range net.Switches() {
			if p := net.FreePort(s); p >= 0 {
				if err := net.AddReflector(s, p); err == nil {
					placed = true
					break
				}
			}
		}
		if !placed {
			die("no free port for loopback plug %d", i)
		}
	}
	if err := net.Validate(); err != nil {
		die("generated network invalid: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := net.Write(w); err != nil {
		die("write: %v", err)
	}

	if *analyze {
		if err := printAnalysis(os.Stderr, net, *parallel); err != nil {
			die("%v", err)
		}
	}
}

// listGenerators enumerates the genspec registry, one generator per line.
func listGenerators(w io.Writer) {
	for _, name := range genspec.Names() {
		g, _ := genspec.Lookup(name)
		desc := ""
		if d, ok := g.(genspec.Describer); ok {
			desc = d.Describe()
		}
		fmt.Fprintf(w, "%-22s %s\n", genspec.UsageOf(g), desc)
	}
}

// printAnalysis writes the §3.1.4 analysis parameters of net to w. The
// output is a pure function of the network: it is byte-identical across
// runs and worker counts (the regression test in main_test.go holds it to
// that).
func printAnalysis(w io.Writer, net *topology.Network, parallel int) error {
	h0 := net.Hosts()[0]
	q, undef := net.Q(h0)
	fmt.Fprintf(w, "analysis: %v\n", net)
	fmt.Fprintf(w, "  diameter D      = %d\n", net.Diameter())
	fmt.Fprintf(w, "  probe bound Q   = %d (from %s)\n", q, net.NameOf(h0))
	fmt.Fprintf(w, "  search depth    = %d (Q+D)\n", q+net.Diameter())
	fmt.Fprintf(w, "  |F|             = %d\n", len(undef))
	fmt.Fprintf(w, "  switch-bridges  = %d\n", len(net.SwitchBridges()))
	fmt.Fprintf(w, "  loopback plugs  = %d\n", len(net.Reflectors()))

	// Per-host probe bounds: the Q each candidate mapper host would
	// need, computed through the parallel sweep runner (one min-cost
	// flow sweep per host; output is identical for any worker count).
	rows, err := experiments.HostQTable(net, experiments.DefaultWorkers(parallel))
	if err != nil {
		return fmt.Errorf("host Q table: %w", err)
	}
	minQ, maxQ, sum := rows[0], rows[0], 0
	for _, r := range rows {
		if r.Q < minQ.Q {
			minQ = r
		}
		if r.Q > maxQ.Q {
			maxQ = r
		}
		sum += r.Q
	}
	fmt.Fprintf(w, "  per-host Q      = %d (%s) .. %d (%s), avg %.1f over %d hosts\n",
		minQ.Q, minQ.Host, maxQ.Q, maxQ.Host, float64(sum)/float64(len(rows)), len(rows))
	return nil
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sangen: "+format+"\n", args...)
	os.Exit(1)
}
