package main

import (
	"bytes"
	"math/rand"
	"testing"

	"sanmap/internal/genspec"
)

// TestAnalysisByteIdentical holds -analyze to its documented contract: the
// report is a pure function of the network, byte-identical across runs and
// across worker counts.
func TestAnalysisByteIdentical(t *testing.T) {
	analysis := func(parallel int) []byte {
		res, err := genspec.Build("random:8,20,4", rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("genspec.Build: %v", err)
		}
		var buf bytes.Buffer
		if err := printAnalysis(&buf, res.Net, parallel); err != nil {
			t.Fatalf("printAnalysis: %v", err)
		}
		return buf.Bytes()
	}
	serial := analysis(1)
	again := analysis(1)
	wide := analysis(4)
	if !bytes.Equal(serial, again) {
		t.Errorf("analysis output differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", serial, again)
	}
	if !bytes.Equal(serial, wide) {
		t.Errorf("analysis output differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", serial, wide)
	}
}
