// Command sanmapd is the crash-safe mapping-as-a-service daemon: it owns
// a live map of a simulated system area network, persists every completed
// map as a checksummed epoch, logs in-flight remap steps to a WAL so an
// interrupted heal resumes instead of restarting, and serves route /
// topology / epoch queries over a unix or tcp socket while it heals.
//
// Usage:
//
//	sanmapd -state DIR [-gen spec] [-seed N] [-chaos spec]
//	        [-listen unix:PATH|host:port] [-once] [-crash-after N]
//
// See internal/mapd and DESIGN.md §14 for the epoch store format, the
// WAL record grammar and the job-ID fencing rule.
package main

import (
	"os"

	"sanmap/internal/mapd"
)

func main() {
	os.Exit(mapd.Main(os.Args[1:], os.Stdout, os.Stderr))
}
