// Command sanmap maps a system area network and computes deadlock-free
// routes from the map — the paper's full pipeline on one topology.
//
// Usage:
//
//	sanmap [-topo file | -gen spec] [-algo berkeley|myricom|label|random]
//	       [-model circuit|cutthrough|packet] [-depth N] [-mapper host]
//	       [-routes] [-dot] [-v] [-chaos seed=N[,cuts=N,flaps=N,kills=N,loss=F,...]]
//	       [-trace file.json] [-metrics file] [-tracelog]
//
// The telemetry flags are the unified observability surface (see
// internal/obs and OBSERVABILITY.md): -trace writes a Chrome trace_event
// JSON sidecar of the run (load it in chrome://tracing or Perfetto),
// -metrics the metrics registry as text, -cpuprofile/-memprofile pprof
// profiles of the simulator itself. -tracelog dumps the run's
// deterministic text log (spans and mapper events) to stderr afterwards.
//
// The topology comes either from a file in the topology text format
// (-topo) or from a generator spec (-gen), e.g.:
//
//	sanmap -gen now-c -routes
//	sanmap -gen fattree:4x4 -algo myricom
//	sanmap -gen random:8,20,4 -model cutthrough -v
//	sanmap -gen hypercube:3 -dot
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sanmap/internal/dot"
	"sanmap/internal/genspec"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/myricom"
	"sanmap/internal/obs"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func main() {
	topoFile := flag.String("topo", "", "topology file (text format)")
	gen := flag.String("gen", "now-c", "generator spec: "+genspec.Specs())
	algo := flag.String("algo", "berkeley", "mapping algorithm: berkeley, myricom, label, random")
	model := flag.String("model", "circuit", "collision model: circuit, cutthrough, packet")
	depth := flag.Int("depth", 0, "probe depth (0 = computed Q+D bound)")
	mapperHost := flag.String("mapper", "", "mapping host name (default: utility host or first host)")
	doRoutes := flag.Bool("routes", false, "compute and verify UP*/DOWN* routes from the map")
	dotOut := flag.Bool("dot", false, "print the mapped network as Graphviz DOT")
	verbose := flag.Bool("v", false, "print probe statistics")
	traceOut := flag.Bool("tracelog", false, "dump the run's trace text log to stderr (berkeley/random only)")
	seed := flag.Int64("seed", 1, "seed for randomised algorithms and port embeddings")
	window := flag.Int("window", 1, "pipelined probe window (1 = serial; berkeley/random only)")
	chaos := flag.String("chaos", "", "map under injected faults with self-healing, e.g. seed=3 or seed=3,cuts=2,loss=0.02")
	tele := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := tele.Begin(); err != nil {
		die("%v", err)
	}

	net, utility, err := loadTopology(*topoFile, *gen, *seed)
	if err != nil {
		die("topology: %v", err)
	}
	h0 := pickMapper(net, utility, *mapperHost)
	if h0 == topology.None {
		die("no usable mapping host")
	}
	d := *depth
	if d == 0 {
		d = net.DepthBound(h0)
	}
	if *chaos != "" {
		if err := runChaos(*chaos, net, h0, parseModel(*model), d, *verbose, tele); err != nil {
			die("chaos: %v", err)
		}
		if err := tele.Finish(); err != nil {
			die("%v", err)
		}
		return
	}
	m, err := runAlgo(*algo, net, h0, parseModel(*model), d, *seed, *traceOut, *window, tele)
	if err != nil {
		die("mapping: %v", err)
	}
	if err := tele.Finish(); err != nil {
		die("%v", err)
	}

	fmt.Printf("actual network: %v (diameter %d)\n", net, net.Diameter())
	fmt.Printf("mapped network: %v using %s probing to depth %d\n", m.Network, *algo, d)
	if err := isomorph.MustEqualCore(m.Network, net); err != nil {
		fmt.Printf("verification: %v\n", err)
	} else {
		fmt.Println("verification: map is isomorphic to N-F (Theorem 1 holds)")
	}
	if *verbose {
		s := m.Stats
		fmt.Printf("probes: %d host (%d hits), %d switch (%d hits); %d explorations, %d merges, %d pruned; elapsed %v\n",
			s.Probes.HostProbes, s.Probes.HostHits,
			s.Probes.SwitchProbes, s.Probes.SwitchHits,
			s.Explorations, s.Merges, s.PrunedVerts, s.Elapsed)
	}
	if *dotOut {
		fmt.Print(dot.Graph(m.Network, "mapped"))
	} else {
		fmt.Print(dot.ASCII(m.Network))
	}

	if *doRoutes {
		cfg := routes.DefaultConfig()
		if utility != "" {
			if u := m.Network.Lookup(utility); u != topology.None {
				cfg.IgnoreHosts = []topology.NodeID{u}
			}
		}
		tab, err := routes.Compute(m.Network, cfg)
		if err != nil {
			die("routes: %v", err)
		}
		checks := []struct {
			name string
			err  error
		}{
			{"up*/down* compliance", tab.VerifyUpDown()},
			{"deadlock freedom", tab.VerifyDeadlockFree()},
			{"delivery", tab.VerifyDelivery(m.Network)},
		}
		for _, c := range checks {
			status := "ok"
			if c.err != nil {
				status = c.err.Error()
			}
			fmt.Printf("routes: %-22s %s\n", c.name, status)
		}
		tables := tab.Distribute()
		fmt.Printf("routes: distributed %d per-interface tables (root %s)\n",
			len(tables), m.Network.NameOf(tab.Root))
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sanmap: "+format+"\n", args...)
	os.Exit(1)
}

func loadTopology(file, gen string, seed int64) (*topology.Network, string, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		net, err := topology.ReadFrom(f)
		return net, "", err
	}
	res, err := genspec.Build(gen, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, "", err
	}
	return res.Net, res.Utility, nil
}

func pickMapper(net *topology.Network, utility, override string) topology.NodeID {
	if override != "" {
		return net.Lookup(override)
	}
	if utility != "" {
		if u := net.Lookup(utility); u != topology.None {
			return u
		}
	}
	hosts := net.Hosts()
	if len(hosts) == 0 {
		return topology.None
	}
	return hosts[0]
}

func parseModel(s string) simnet.Model {
	switch s {
	case "circuit":
		return simnet.CircuitModel
	case "cutthrough":
		return simnet.CutThroughModel
	case "packet":
		return simnet.PacketModel
	}
	die("unknown collision model %q", s)
	return simnet.Model{}
}

func runAlgo(algo string, net *topology.Network, h0 topology.NodeID,
	model simnet.Model, depth int, seed int64, trace bool, window int, tele *obs.Flags) (*mapper.Map, error) {
	sn := simnet.New(net, model, simnet.DefaultTiming())
	// -tracelog records onto the telemetry tracer (allocating a private one
	// when -trace is off) and dumps the deterministic text log afterwards.
	tr := tele.Tracer
	if trace && tr == nil {
		tr = obs.NewTracer()
	}
	opts := []mapper.Option{mapper.WithDepth(depth), mapper.WithPipeline(window),
		mapper.WithTracer(tr), mapper.WithMetrics(tele.Metrics)}
	run := func() (*mapper.Map, error) {
		switch algo {
		case "berkeley":
			return mapper.Run(sn.Endpoint(h0), opts...)
		case "label":
			return mapper.LabelRun(sn.Endpoint(h0), depth)
		case "random":
			return mapper.RandomizedRun(sn.Endpoint(h0), mapper.RandomizedConfig{
				Config:       mapper.BuildConfig(opts...),
				CouponProbes: 32 * net.NumSwitches(),
				Rng:          rand.New(rand.NewSource(seed)),
			})
		case "myricom":
			my, err := myricom.Run(sn.Endpoint(h0), myricom.DefaultConfig(depth))
			if err != nil {
				return nil, err
			}
			// Adapt to the common result shape for printing.
			return &mapper.Map{Network: my.Network, Mapper: my.Mapper}, nil
		}
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	m, err := run()
	if trace && err == nil && tr != nil {
		if werr := tr.WriteText(os.Stderr); werr != nil {
			return nil, werr
		}
	}
	return m, err
}
