package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sanmap/internal/faults"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// parseChaos parses the -chaos spec: comma-separated key=value pairs, e.g.
// "seed=7", "seed=3,cuts=2,flaps=1,loss=0.02". Unknown keys are errors.
func parseChaos(spec string, net *topology.Network, h0 topology.NodeID) (faults.Schedule, error) {
	p := faults.Profile{Protect: h0}
	seed := uint64(1)
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return faults.Schedule{}, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			seed, err = strconv.ParseUint(v, 10, 64)
		case "cuts":
			p.Cuts, err = strconv.Atoi(v)
		case "flaps":
			p.Flaps, err = strconv.Atoi(v)
		case "kills":
			p.SwitchKills, err = strconv.Atoi(v)
		case "restart":
			p.Restart, err = strconv.ParseBool(v)
		case "loss":
			p.LossRate, err = strconv.ParseFloat(v, 64)
		case "trunc":
			p.TruncRate, err = strconv.ParseFloat(v, 64)
		case "cross":
			p.CrossRate, err = strconv.ParseFloat(v, 64)
		case "window":
			var ms float64
			ms, err = strconv.ParseFloat(v, 64)
			p.Window = time.Duration(ms * float64(time.Millisecond))
		default:
			return faults.Schedule{}, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return faults.Schedule{}, fmt.Errorf("chaos: bad value for %s: %v", k, err)
		}
	}
	if p.Cuts == 0 && p.Flaps == 0 && p.SwitchKills == 0 &&
		p.LossRate == 0 && p.TruncRate == 0 && p.CrossRate == 0 {
		// Bare "seed=N" gets a default mixed fault load.
		p.Cuts, p.Flaps, p.LossRate = 1, 1, 0.02
	}
	return faults.Generate(net, seed, p), nil
}

// runChaos maps the network under an injected fault schedule with the
// self-healing pipeline: map, force any remaining scheduled faults, remap
// incrementally, and report the degraded result against the surviving core.
func runChaos(spec string, net *topology.Network, h0 topology.NodeID,
	model simnet.Model, depth int, verbose bool, tele *obs.Flags) error {
	sched, err := parseChaos(spec, net, h0)
	if err != nil {
		return err
	}
	sn := simnet.New(net, model, simnet.DefaultTiming())
	inj := faults.Attach(sn, sched).Instrument(tele.Tracer, tele.Metrics)

	// Healing routes can need more depth than the clean bound once cuts
	// lengthen the surviving paths.
	s, err := mapper.NewSession(sn.Endpoint(h0),
		mapper.WithDepth(depth+net.NumSwitches()), mapper.WithConfirm(2),
		mapper.WithTracer(tele.Tracer), mapper.WithMetrics(tele.Metrics))
	if err != nil {
		return err
	}
	if _, err := s.Map(); err != nil {
		return fmt.Errorf("initial map: %v", err)
	}
	inj.ApplyAll() // any faults the map phase outran land now
	sn.Reconfigure()
	res, err := s.Remap()
	if err != nil {
		return fmt.Errorf("remap: %v", err)
	}

	fmt.Printf("chaos: %d scheduled events, rates loss=%.3g trunc=%.3g cross=%.3g (seed %d)\n",
		len(sched.Events), sched.LossRate, sched.TruncRate, sched.CrossRate, sched.Seed)
	want := faults.SurvivingCore(sn.Topology(), h0)
	fmt.Printf("surviving core: %v\n", want)
	fmt.Printf("healed map:     %v\n", res.Network)
	fmt.Printf("confidence %.3f partial=%v contradictions=%d suspects=%d\n",
		res.Confidence, res.Partial, res.Stats.Contradictions, len(res.Suspect))
	if ok, reason := isomorph.Check(res.Network, want); ok {
		fmt.Println("verification: healed map is isomorphic to the surviving core")
	} else {
		sim := isomorph.Compare(res.Network, want)
		fmt.Printf("verification: degraded (%s); similarity %.3f\n", reason, sim.Score())
	}
	if verbose {
		fmt.Print("injected fault log:\n", faults.FormatLog(inj.Log()))
		fmt.Println("mapper fault log:")
		for _, o := range res.FaultLog {
			fmt.Println("  " + o.String())
		}
	}
	return nil
}
