package main

import (
	"fmt"

	"sanmap/internal/faults"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapper"
	"sanmap/internal/obs"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

// parseChaos resolves the -chaos spec (see faults.ParseProfile for the
// grammar) into a schedule for net, shielding h0's attachment switch.
func parseChaos(spec string, net *topology.Network, h0 topology.NodeID) (faults.Schedule, error) {
	p, seed, err := faults.ParseProfile(spec)
	if err != nil {
		return faults.Schedule{}, err
	}
	p.Protect = h0
	return faults.Generate(net, seed, p), nil
}

// runChaos maps the network under an injected fault schedule with the
// self-healing pipeline: map, force any remaining scheduled faults, remap
// incrementally, and report the degraded result against the surviving core.
func runChaos(spec string, net *topology.Network, h0 topology.NodeID,
	model simnet.Model, depth int, verbose bool, tele *obs.Flags) error {
	sched, err := parseChaos(spec, net, h0)
	if err != nil {
		return err
	}
	sn := simnet.New(net, model, simnet.DefaultTiming())
	inj := faults.Attach(sn, sched).Instrument(tele.Tracer, tele.Metrics)

	// Healing routes can need more depth than the clean bound once cuts
	// lengthen the surviving paths.
	s, err := mapper.NewSession(sn.Endpoint(h0),
		mapper.WithDepth(depth+net.NumSwitches()), mapper.WithConfirm(2),
		mapper.WithTracer(tele.Tracer), mapper.WithMetrics(tele.Metrics))
	if err != nil {
		return err
	}
	if _, err := s.Map(); err != nil {
		return fmt.Errorf("initial map: %v", err)
	}
	inj.ApplyAll() // any faults the map phase outran land now
	sn.Reconfigure()
	res, err := s.Remap()
	if err != nil {
		return fmt.Errorf("remap: %v", err)
	}

	fmt.Printf("chaos: %d scheduled events, rates loss=%.3g trunc=%.3g cross=%.3g (seed %d)\n",
		len(sched.Events), sched.LossRate, sched.TruncRate, sched.CrossRate, sched.Seed)
	want := faults.SurvivingCore(sn.Topology(), h0)
	fmt.Printf("surviving core: %v\n", want)
	fmt.Printf("healed map:     %v\n", res.Network)
	fmt.Printf("confidence %.3f partial=%v contradictions=%d suspects=%d\n",
		res.Confidence, res.Partial, res.Stats.Contradictions, len(res.Suspect))
	if ok, reason := isomorph.Check(res.Network, want); ok {
		fmt.Println("verification: healed map is isomorphic to the surviving core")
	} else {
		sim := isomorph.Compare(res.Network, want)
		fmt.Printf("verification: degraded (%s); similarity %.3f\n", reason, sim.Score())
	}
	if verbose {
		fmt.Print("injected fault log:\n", faults.FormatLog(inj.Log()))
		fmt.Println("mapper fault log:")
		for _, o := range res.FaultLog {
			fmt.Println("  " + o.String())
		}
	}
	return nil
}
