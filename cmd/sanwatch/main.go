// Command sanwatch demonstrates the paper's operational loop: "The system
// periodically discovers the network topology and uses it to compute and to
// distribute a set of mutually-deadlock free routes to all network
// interfaces." It runs a sequence of mapping epochs over a topology that
// mutates between epochs (cables fail, hosts move, switches appear), and
// reports per epoch: the map diff against the previous epoch, verification
// against the actual network, and the refreshed route set.
//
// Usage:
//
//	sanwatch [-gen spec] [-epochs N] [-churn N] [-seed N]
//	         [-trace file.json] [-metrics file]
//	sanwatch -daemon ADDR [-epochs N] [-churn N] [-seed N]
//
// With -daemon, sanwatch runs the same loop against a live sanmapd
// instead of an in-process network: each epoch injects a seeded burst of
// structural faults over the daemon's socket, waits for it to heal, and
// reports the committed epoch, serving level and a spot-check route.
//
// The telemetry flags (internal/obs, OBSERVABILITY.md) record every epoch
// onto one timeline: a cat-"watch" span per epoch, each on its own track,
// with the epochs' mapping metrics aggregated in the registry.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"sanmap/internal/faults"
	"sanmap/internal/genspec"
	"sanmap/internal/isomorph"
	"sanmap/internal/mapd"
	"sanmap/internal/mapper"
	"sanmap/internal/obs"
	"sanmap/internal/routes"
	"sanmap/internal/simnet"
	"sanmap/internal/topology"
)

func main() {
	gen := flag.String("gen", "now-c", "generator spec: "+genspec.Specs())
	epochs := flag.Int("epochs", 6, "number of mapping epochs")
	churn := flag.Int("churn", 2, "random mutations between epochs")
	seed := flag.Int64("seed", 1, "seed for the mutation sequence")
	daemon := flag.String("daemon", "", "sanmapd address (unix:PATH or host:port): drive a live daemon instead of the in-process loop")
	tele := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if *daemon != "" {
		watchDaemon(*daemon, *epochs, *churn, *seed)
		return
	}
	if err := tele.Begin(); err != nil {
		die("%v", err)
	}

	// The mutation stream draws from the repo's seeding convention (the
	// splitmix64 source defined in internal/faults), not math/rand's
	// default LCG source.
	rng := rand.New(faults.NewSource(uint64(*seed)))
	res, err := genspec.Build(*gen, rng)
	if err != nil {
		die("%v", err)
	}
	net := res.Net
	var prev *mapper.Map
	nextHost, nextSwitch := 0, 0

	for epoch := 0; epoch < *epochs; epoch++ {
		if epoch > 0 {
			for c := 0; c < *churn; c++ {
				mutate(net, rng, &nextHost, &nextSwitch)
			}
		}
		h0 := pickMapper(net, res.Utility)
		if h0 == topology.None {
			die("epoch %d: no mapping host left", epoch)
		}
		sn := simnet.NewDefault(net)
		m, err := mapper.Run(sn.Endpoint(h0), mapper.WithDepth(net.DepthBound(h0)),
			mapper.WithTracer(tele.Tracer), mapper.WithMetrics(tele.Metrics))
		if err != nil {
			die("epoch %d: mapping: %v", epoch, err)
		}
		// Each epoch is its own virtual timeline (the transport clock
		// restarts at zero), so epochs land on separate tracks instead of
		// pretending to share one.
		tele.Tracer.OnTrack(epoch+1).Span("watch", "epoch", 0, m.Stats.Elapsed,
			obs.Int("epoch", epoch), obs.Int("probes", int(m.Stats.Probes.TotalProbes())))
		verdict := "map ≅ N-F"
		if err := isomorph.MustEqualCore(m.Network, net); err != nil {
			verdict = "MISMATCH: " + err.Error()
		}
		change := "initial map"
		if prev != nil {
			change = topology.Compare(prev.Network, m.Network).String()
		}
		prev = m

		routeState := "routes refreshed"
		if tab, err := routes.Compute(m.Network, routes.DefaultConfig()); err != nil {
			routeState = "routes FAILED: " + err.Error()
		} else if err := tab.VerifyDeadlockFree(); err != nil {
			routeState = "DEADLOCK: " + err.Error()
		} else {
			routeState = fmt.Sprintf("%d routes refreshed (root %s)",
				m.Network.NumHosts()*(m.Network.NumHosts()-1), m.Network.NameOf(tab.Root))
		}
		fmt.Printf("epoch %d: %v mapped in %v with %d probes; %s\n         change: %s\n         %s\n",
			epoch, m.Network, m.Stats.Elapsed, m.Stats.Probes.TotalProbes(), verdict, change, routeState)
	}
	if err := tele.Finish(); err != nil {
		die("%v", err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sanwatch: "+format+"\n", args...)
	os.Exit(1)
}

// watchDaemon is the -daemon mode: the operational loop against a live
// sanmapd. Epoch 0 only reports the daemon's current state; each later
// epoch injects a seeded structural fault burst (the daemon's continuous
// remap loop heals before the inject call returns) and then spot-checks a
// route on the freshly served map.
func watchDaemon(addr string, epochs, churn int, seed int64) {
	cl, err := mapd.Dial(addr)
	if err != nil {
		die("dial %s: %v", addr, err)
	}
	defer cl.Close()
	for epoch := 0; epoch < epochs; epoch++ {
		if epoch > 0 {
			spec := fmt.Sprintf("seed=%d,cuts=%d,flaps=1", seed+int64(epoch), churn)
			resp, err := cl.Call(map[string]any{"op": "inject", "spec": spec})
			if err != nil {
				die("inject: %v", err)
			}
			if resp["ok"] != true {
				die("inject %s: %v", spec, resp["error"])
			}
			fmt.Printf("  [churn] %s: %v\n", spec, resp["result"])
		}
		st, err := cl.Call(map[string]any{"op": "epoch"})
		if err != nil {
			die("epoch: %v", err)
		}
		if st["ok"] != true {
			die("epoch: %v", st["error"])
		}
		fmt.Printf("epoch %d: daemon at epoch %.0f (%s, confidence %.3f, %.0f probes, resumed=%v)\n",
			epoch, st["epoch"], st["level"], st["confidence"], st["probes"], st["resumed"])
		from, to, ok := spotHosts(cl)
		if !ok {
			continue
		}
		route, err := cl.Call(map[string]any{"op": "route", "from": from, "to": to})
		if err != nil {
			die("route: %v", err)
		}
		switch {
		case route["ok"] == true:
			fmt.Printf("         route %s->%s: %v (%.0f hops)\n", from, to, route["route"], route["hops"])
		case route["refused"] == true:
			fmt.Printf("         route %s->%s refused: %v\n", from, to, route["error"])
		default:
			die("route %s->%s: %v", from, to, route["error"])
		}
	}
}

// spotHosts picks the first and last host of the daemon's served map for
// the per-epoch route spot check.
func spotHosts(cl *mapd.Client) (from, to string, ok bool) {
	resp, err := cl.Call(map[string]any{"op": "topo"})
	if err != nil {
		die("topo: %v", err)
	}
	if resp["ok"] != true {
		die("topo: %v", resp["error"])
	}
	text, _ := resp["network"].(string)
	net, err := topology.ReadFrom(strings.NewReader(text))
	if err != nil {
		die("topo parse: %v", err)
	}
	hosts := net.Hosts()
	if len(hosts) < 2 {
		return "", "", false
	}
	return net.NameOf(hosts[0]), net.NameOf(hosts[len(hosts)-1]), true
}

func pickMapper(net *topology.Network, utility string) topology.NodeID {
	if utility != "" {
		if u := net.Lookup(utility); u != topology.None && net.WireAt(u, topology.HostPort) >= 0 {
			return u
		}
	}
	for _, h := range net.Hosts() {
		if net.WireAt(h, topology.HostPort) >= 0 {
			return h
		}
	}
	return topology.None
}

// mutate applies one random reconfiguration, keeping the network valid and
// connected (a mutation that would disconnect is retried as another kind).
func mutate(net *topology.Network, rng *rand.Rand, nextHost, nextSwitch *int) {
	for attempt := 0; attempt < 8; attempt++ {
		switch rng.Intn(4) {
		case 0: // fail a non-bridge switch-to-switch cable
			bridges := map[int]bool{}
			for _, wi := range net.Bridges() {
				bridges[wi] = true
			}
			var candidates []int
			net.WiresIndexed(func(wi int, w topology.Wire) {
				if !bridges[wi] &&
					net.KindOf(w.A.Node) == topology.SwitchNode &&
					net.KindOf(w.B.Node) == topology.SwitchNode {
					candidates = append(candidates, wi)
				}
			})
			if len(candidates) == 0 {
				continue
			}
			wi := candidates[rng.Intn(len(candidates))]
			if err := net.RemoveWire(wi); err == nil {
				fmt.Printf("  [churn] cable %d failed\n", wi)
				return
			}
		case 1: // attach a new host
			sw := switchWithFreePort(net, rng)
			if sw == topology.None {
				continue
			}
			h := net.AddHost(fmt.Sprintf("Watch%d", *nextHost))
			*nextHost++
			if _, _, _, err := net.ConnectFree(h, sw); err == nil {
				fmt.Printf("  [churn] host %s attached\n", net.NameOf(h))
				return
			}
		case 2: // add a switch cabled to two existing switches
			a := switchWithFreePort(net, rng)
			b := switchWithFreePort(net, rng)
			if a == topology.None || b == topology.None || a == b {
				continue
			}
			s := net.AddSwitch(fmt.Sprintf("WSw%d", *nextSwitch))
			*nextSwitch++
			if _, _, _, err := net.ConnectFree(s, a); err != nil {
				continue
			}
			if _, _, _, err := net.ConnectFree(s, b); err != nil {
				continue
			}
			fmt.Printf("  [churn] switch added between two others\n")
			return
		case 3: // move a host to another switch
			hosts := net.Hosts()
			if len(hosts) < 2 {
				continue
			}
			h := hosts[rng.Intn(len(hosts))]
			target := switchWithFreePort(net, rng)
			if target == topology.None {
				continue
			}
			if cur, _, ok := net.HostSwitch(h); ok && cur == target {
				continue
			}
			if w := net.WireAt(h, topology.HostPort); w >= 0 {
				if err := net.RemoveWire(w); err != nil {
					continue
				}
			}
			if _, _, _, err := net.ConnectFree(h, target); err == nil {
				fmt.Printf("  [churn] host %s moved\n", net.NameOf(h))
				return
			}
		}
	}
}

func switchWithFreePort(net *topology.Network, rng *rand.Rand) topology.NodeID {
	var out []topology.NodeID
	for _, s := range net.Switches() {
		if net.FreePort(s) >= 0 {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return topology.None
	}
	return out[rng.Intn(len(out))]
}
