// Command sanlint is the repo's multichecker: it runs the six sanlint
// analyzers (determinism, epochcheck, goroutine, hotpath, lockcheck,
// senterr) whole-program over the packages matched by the given patterns
// (default ./...) and exits non-zero if any diagnostic is reported.
// `make lint` runs it over the whole tree.
//
// Packages load in dependency order so facts exported by a dependency —
// hotpath's allocation-free proofs, determinism's taint chains, lockcheck's
// lock orders, goroutine's completion signals — are visible when its
// importers are analyzed.
//
// Diagnostics print in the familiar vet format:
//
//	path/to/file.go:12:3: hotpath: make allocates
//
// With -json they print instead as a JSON array of findings, sorted by
// file, line, column, then analyzer — byte-identical across runs, so CI can
// archive the output as an artifact and diff it between commits. With
// -fact-debug the exported fact tables print after the diagnostics.
//
// The determinism analyzer's diagnostics are scoped to the packages whose
// output feeds the reproducibility guarantee (experiments, mapper, dot,
// isomorph); its facts still propagate program-wide so a scoped package
// calling a tainted helper elsewhere is caught at the import edge.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sanmap/internal/analysis"
	"sanmap/internal/analysis/determinism"
	"sanmap/internal/analysis/epochcheck"
	"sanmap/internal/analysis/goroutine"
	"sanmap/internal/analysis/hotpath"
	"sanmap/internal/analysis/lockcheck"
	"sanmap/internal/analysis/senterr"
)

// analyzers is the full suite, in display order.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	epochcheck.Analyzer,
	goroutine.Analyzer,
	hotpath.Analyzer,
	lockcheck.Analyzer,
	senterr.Analyzer,
}

// determinismScope lists the import-path suffixes where map-iteration order
// and global randomness leak into published artifacts (maps, DOT renderings,
// experiment tables). Elsewhere the rules would mostly flag benign code, so
// determinism diagnostics outside the scope are dropped — the analyzer still
// runs everywhere to export taint facts.
var determinismScope = []string{
	"internal/experiments",
	"internal/mapper",
	"internal/dot",
	"internal/isomorph",
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sanlint:", err)
		os.Exit(1)
	}
	os.Exit(run(wd, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it loads the patterns relative to wd,
// applies the suite, and writes findings to stdout. It returns the process
// exit code: 0 clean, 1 findings or load failure, 2 flag error.
func run(wd string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sanlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "print findings as a sorted JSON array (stable across runs)")
	factDebug := fs.Bool("fact-debug", false, "dump the exported object and package facts after the findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sanlint [-list] [-json] [-fact-debug] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the sanlint analyzers whole-program over the given package patterns (default ./...).\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "sanlint:", err)
		return 1
	}
	res, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "sanlint:", err)
		return 1
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "sanlint: no packages matched")
		return 1
	}

	fset := pkgs[0].Fset
	findings := []finding{}
	for _, d := range res.Diagnostics {
		if d.Analyzer == determinism.Analyzer.Name && !inDeterminismScope(d.Package) {
			continue
		}
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		findings = append(findings, finding{
			File:     name,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	// Diagnostics arrive sorted on absolute paths; re-sort on the printed
	// (relativized) names so the output contract is self-contained.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if *jsonOut {
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "sanlint:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", out)
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}

	if *factDebug {
		for _, of := range res.ObjectFacts() {
			fmt.Fprintf(stdout, "fact %s %s %v\n", of.Analyzer, of.Key, of.Fact)
		}
		for _, pf := range res.PackageFacts() {
			fmt.Fprintf(stdout, "packagefact %s %s %v\n", pf.Analyzer, pf.Path, pf.Fact)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sanlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func inDeterminismScope(importPath string) bool {
	for _, suffix := range determinismScope {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}
