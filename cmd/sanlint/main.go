// Command sanlint is the repo's multichecker: it runs the four sanlint
// analyzers (determinism, hotpath, epochcheck, senterr) over the packages
// matched by the given patterns (default ./...) and exits non-zero if any
// diagnostic is reported. `make lint` runs it over the whole tree.
//
// Diagnostics print in the familiar vet format:
//
//	path/to/file.go:12:3: hotpath: make allocates
//
// The determinism analyzer is scoped to the packages whose output feeds the
// reproducibility guarantee (experiments, mapper, dot, isomorph); the other
// three run everywhere.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sanmap/internal/analysis"
	"sanmap/internal/analysis/determinism"
	"sanmap/internal/analysis/epochcheck"
	"sanmap/internal/analysis/hotpath"
	"sanmap/internal/analysis/senterr"
)

// always runs over every matched package.
var always = []*analysis.Analyzer{
	hotpath.Analyzer,
	epochcheck.Analyzer,
	senterr.Analyzer,
}

// determinismScope lists the import-path suffixes where map-iteration order
// and global randomness leak into published artifacts (maps, DOT renderings,
// experiment tables). Elsewhere the rules would mostly flag benign code.
var determinismScope = []string{
	"internal/experiments",
	"internal/mapper",
	"internal/dot",
	"internal/isomorph",
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sanlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the sanlint analyzers over the given package patterns (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range append(append([]*analysis.Analyzer(nil), always...), determinism.Analyzer) {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, pkg := range pkgs {
		analyzers := always
		if inDeterminismScope(pkg.ImportPath) {
			analyzers = append(append([]*analysis.Analyzer(nil), always...), determinism.Analyzer)
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "sanlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func inDeterminismScope(importPath string) bool {
	for _, suffix := range determinismScope {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sanlint:", err)
	os.Exit(1)
}
