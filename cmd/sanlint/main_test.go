package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDir is the fixture tree with one deliberate finding per analyzer
// (and one out-of-scope determinism finding that must be filtered).
func goldenDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestJSONGolden locks the -json contract: two runs are byte-identical, and
// both match the checked-in golden file. Regenerate with
//
//	cd internal/analysis/testdata/src/golden && go run sanmap/cmd/sanlint -json > ../../../../../cmd/sanlint/testdata/golden.json
func TestJSONGolden(t *testing.T) {
	dir := goldenDir(t)
	var first, second, stderr bytes.Buffer
	if code := run(dir, []string{"-json"}, &first, &stderr); code != 1 {
		t.Fatalf("first run: exit code = %d, want 1 (findings); stderr: %s", code, stderr.String())
	}
	if code := run(dir, []string{"-json"}, &second, &stderr); code != 1 {
		t.Fatalf("second run: exit code = %d, want 1 (findings)", code)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("-json output differs between two runs:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), want) {
		t.Fatalf("-json output diverged from testdata/golden.json (regenerate if intentional):\n--- got ---\n%s\n--- want ---\n%s", first.String(), want)
	}
}

// TestJSONFindings sanity-checks the analyzer coverage of the golden tree:
// exactly one finding per analyzer, determinism filtered by scope.
func TestJSONFindings(t *testing.T) {
	var out, stderr bytes.Buffer
	run(goldenDir(t), nil, &out, &stderr)
	text := out.String()
	for _, name := range []string{"senterr", "hotpath", "epochcheck", "lockcheck", "goroutine"} {
		if got := strings.Count(text, ": "+name+": "); got != 1 {
			t.Errorf("golden tree: %d %s findings, want 1\noutput:\n%s", got, name, text)
		}
	}
	if strings.Contains(text, "determinism") {
		t.Errorf("determinism finding leaked through the scope filter:\n%s", text)
	}
}

// TestFactDebug locks the -fact-debug contract: deterministic output that
// includes the cross-analyzer fact tables.
func TestFactDebug(t *testing.T) {
	dir := goldenDir(t)
	var first, second, stderr bytes.Buffer
	run(dir, []string{"-fact-debug"}, &first, &stderr)
	run(dir, []string{"-fact-debug"}, &second, &stderr)
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("-fact-debug output differs between two runs:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}
	for _, want := range []string{
		"fact hotpath ",
		"allocfree",
		"fact determinism ",
		"reaches fireAndForget -> time.Now",
		"fact lockcheck ",
	} {
		if !strings.Contains(first.String(), want) {
			t.Errorf("-fact-debug output missing %q:\n%s", want, first.String())
		}
	}
}

// TestList covers -list: all six analyzers, no loading.
func TestList(t *testing.T) {
	var out, stderr bytes.Buffer
	if code := run(t.TempDir(), []string{"-list"}, &out, &stderr); code != 0 {
		t.Fatalf("-list: exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "epochcheck", "goroutine", "hotpath", "lockcheck", "senterr"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
