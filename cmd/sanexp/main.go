// Command sanexp reproduces the tables and figures of the SPAA'97 paper
// "System Area Network Mapping" on the simulated Berkeley NOW.
//
// Usage:
//
//	sanexp [-fig all|3|4|5|6|7|8|9|10|routes] [-runs N] [-window W] [-step N] [-seed N] [-parallel P] [-dot]
//	       [-trace file.json] [-metrics file]
//
// Every report prints the measured values next to the paper's, so the
// shape comparison is visible at a glance. Timings are virtual (see
// simnet.Timing); message counts are algorithmic properties.
//
// The telemetry flags (internal/obs, OBSERVABILITY.md) record the Fig 8
// mapping run: `sanexp -fig 8 -trace out.json` writes a Chrome
// trace_event sidecar of the model-graph growth run, byte-identical for
// the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sanmap/internal/experiments"
	"sanmap/internal/mapper"
	"sanmap/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which figure to reproduce: all, 3, 4, 5, 6, 7, 8, 9, 10, routes, chaos")
	runs := flag.Int("runs", 5, "repetitions for the Fig 7 timing table")
	window := flag.Int("window", 8, "pipelined probe window for the Fig 7 pipelined column (1 = serial)")
	step := flag.Int("step", 5, "responder sweep granularity for Fig 9")
	seed := flag.Int64("seed", 1, "seed for randomised orders")
	depth := flag.Int("depth", 0, "probe depth for the Fig 9 sweep (0 = the Q+D bound)")
	dotOut := flag.Bool("dot", false, "emit Graphviz DOT instead of ASCII for figs 4 and 5")
	tsvDir := flag.String("tsv", "", "also write Fig 8/9 series as TSV files into this directory")
	parallel := flag.Int("parallel", 1, "worker pool size for the Fig 7/9/10 sweeps (0 = one per CPU); output is identical for any value")
	tele := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	workers := experiments.DefaultWorkers(*parallel)

	want := func(name string) bool { return *fig == "all" || *fig == name }
	ran := false

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "sanexp: %s: %v\n", name, err)
		os.Exit(1)
	}
	if err := tele.Begin(); err != nil {
		fail("telemetry", err)
	}
	section := func(s string) {
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(s)
	}

	if want("3") {
		ran = true
		section(experiments.FormatFig3(experiments.Fig3()))
	}
	if want("4") {
		ran = true
		ascii, dotSrc, err := experiments.Fig4()
		if err != nil {
			fail("fig 4", err)
		}
		out := ascii
		if *dotOut {
			out = dotSrc
		}
		section("Fig 4 — mapped subcluster C\n" + out)
	}
	if want("5") {
		ran = true
		ascii, dotSrc, err := experiments.Fig5()
		if err != nil {
			fail("fig 5", err)
		}
		out := ascii
		if *dotOut {
			out = dotSrc
		}
		section("Fig 5 — mapped 100-node system\n" + out)
	}
	if want("6") {
		ran = true
		rows, err := experiments.Fig6()
		if err != nil {
			fail("fig 6", err)
		}
		section(experiments.FormatFig6(rows))
	}
	if want("7") {
		ran = true
		rows, err := experiments.Fig7Sweep(*runs, *window, workers)
		if err != nil {
			fail("fig 7", err)
		}
		section(experiments.FormatFig7(rows))
	}
	if want("8") {
		ran = true
		series, err := experiments.Fig8Obs(tele.Tracer, tele.Metrics)
		if err != nil {
			fail("fig 8", err)
		}
		section(experiments.FormatFig8(series))
		if *tsvDir != "" {
			if err := writeTSV(*tsvDir, "fig8.tsv", fig8TSV(series)); err != nil {
				fail("fig 8 tsv", err)
			}
		}
	}
	if want("9") {
		ran = true
		ordered, random, err := experiments.Fig9Sweep(*step, *seed, *depth, workers)
		if err != nil {
			fail("fig 9", err)
		}
		section(experiments.FormatFig9(ordered, random))
		if *tsvDir != "" {
			if err := writeTSV(*tsvDir, "fig9.tsv", fig9TSV(ordered, random)); err != nil {
				fail("fig 9 tsv", err)
			}
		}
	}
	if want("10") {
		ran = true
		rows, err := experiments.Fig10Sweep(workers)
		if err != nil {
			fail("fig 10", err)
		}
		section(experiments.FormatFig10(rows))
	}
	if want("chaos") {
		ran = true
		seeds := make([]uint64, *runs)
		for i := range seeds {
			seeds[i] = uint64(*seed) + uint64(i)
		}
		rows, err := experiments.ChaosSweep(seeds, workers)
		if err != nil {
			fail("chaos", err)
		}
		section(experiments.FormatChaos(rows))
	}
	if want("routes") {
		ran = true
		report, err := experiments.RoutesReport()
		if err != nil {
			fail("routes", err)
		}
		section(report)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "sanexp: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	if err := tele.Finish(); err != nil {
		fail("telemetry", err)
	}
}

// writeTSV writes content into dir/name, creating dir if needed.
func writeTSV(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(dir+"/"+name, []byte(content), 0o644)
}

// fig8TSV renders the model-graph growth series.
func fig8TSV(series []mapper.Snapshot) string {
	out := "# exploration\tnodes\tedges\tfrontier\n"
	for _, s := range series {
		out += fmt.Sprintf("%d\t%d\t%d\t%d\n", s.Exploration, s.Vertices, s.Edges, s.Frontier)
	}
	return out
}

// fig9TSV renders both responder-sweep curves (seconds of simulated time).
func fig9TSV(ordered, random []experiments.Fig9Point) string {
	out := "# responders\tordered_s\trandom_s\tordered_probes\trandom_probes\n"
	for i := range ordered {
		r := experiments.Fig9Point{}
		if i < len(random) {
			r = random[i]
		}
		out += fmt.Sprintf("%d\t%.3f\t%.3f\t%d\t%d\n",
			ordered[i].Responders, ordered[i].Time.Seconds(), r.Time.Seconds(),
			ordered[i].Probes, r.Probes)
	}
	return out
}
