// Command sanbench converts `go test -bench` output into a JSON baseline
// file (and back). The JSON form is what the repo commits as
// BENCH_<rev>.json; the -text mode re-renders a baseline in the standard
// benchmark text format so it can be fed straight to benchstat against a
// fresh run.
//
// Usage:
//
//	go test -bench . -run '^$' . | sanbench -rev $(git rev-parse --short HEAD) -o BENCH_abc1234.json
//	sanbench -text BENCH_abc1234.json > old.txt   # benchstat old.txt new.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sanmap/internal/stats"
)

func main() {
	rev := flag.String("rev", "", "revision label to embed in the JSON baseline")
	out := flag.String("o", "", "output file (default stdout)")
	text := flag.String("text", "", "render this JSON baseline back to benchmark text instead of parsing")
	flag.Parse()

	var err error
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			die("%v", cerr)
		}
		defer func() {
			if cerr := f.Close(); err == nil && cerr != nil {
				die("%v", cerr)
			}
		}()
		w = f
	}

	if *text != "" {
		data, rerr := os.ReadFile(*text)
		if rerr != nil {
			die("%v", rerr)
		}
		var set stats.BenchSet
		if err = json.Unmarshal(data, &set); err != nil {
			die("%s: %v", *text, err)
		}
		if _, err = io.WriteString(w, stats.FormatBench(&set)); err != nil {
			die("%v", err)
		}
		return
	}

	set, perr := stats.ParseBench(os.Stdin)
	if perr != nil {
		die("%v", perr)
	}
	set.Rev = *rev
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err = enc.Encode(set); err != nil {
		die("%v", err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sanbench: "+format+"\n", args...)
	os.Exit(1)
}
