// Command sanbench converts `go test -bench` output into a JSON baseline
// file (and back), and enforces the wall-clock gates a baseline carries.
// The JSON form is what the repo commits as BENCH_<rev>.json; the -text
// mode re-renders a baseline in the standard benchmark text format so it
// can be fed straight to benchstat against a fresh run.
//
// Usage:
//
//	# record a baseline (duplicate names from -count collapse to minima,
//	# gates from the committed policy file are embedded and self-checked):
//	go test -bench . -count 5 -run '^$' . | \
//	    sanbench -rev $(git rev-parse --short HEAD) -min -gates bench_gates.json -o BENCH_abc1234.json
//
//	# gate a fresh run against the committed baseline (CI's bench-gate):
//	go test -bench 'PipelinedVsSerial' -count 3 -run '^$' . | sanbench -gate BENCH_abc1234.json
//
//	sanbench -text BENCH_abc1234.json > old.txt   # benchstat old.txt new.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"

	"sanmap/internal/stats"
)

func main() {
	rev := flag.String("rev", "", "revision label to embed in the JSON baseline")
	out := flag.String("o", "", "output file (default stdout)")
	text := flag.String("text", "", "render this JSON baseline back to benchmark text instead of parsing")
	min := flag.Bool("min", false, "collapse duplicate names from -count runs to per-metric minima")
	gatesFile := flag.String("gates", "", "embed the gates from this JSON file and self-check the run against them")
	gateAgainst := flag.String("gate", "", "gate the parsed run against this committed baseline; exit 1 on violation")
	flag.Parse()

	if *text != "" {
		set := readBaseline(*text)
		if _, err := io.WriteString(output(out), stats.FormatBench(set)); err != nil {
			die("%v", err)
		}
		return
	}

	set, err := stats.ParseBench(os.Stdin)
	if err != nil {
		die("%v", err)
	}
	stampConfig(set)

	if *gateAgainst != "" {
		base := readBaseline(*gateAgainst)
		set.CollapseMin()
		checkOrDie(base, set)
		fmt.Printf("sanbench: %d gates ok against %s\n", len(base.Gates), *gateAgainst)
		return
	}

	set.Rev = *rev
	if *min {
		set.CollapseMin()
	} else {
		set.SortResults()
	}
	if *gatesFile != "" {
		data, rerr := os.ReadFile(*gatesFile)
		if rerr != nil {
			die("%v", rerr)
		}
		if err := json.Unmarshal(data, &set.Gates); err != nil {
			die("%s: %v", *gatesFile, err)
		}
		// A baseline must satisfy its own absolute and relative gates;
		// recording a run that breaks them would bless the regression.
		checkOrDie(set, set)
	}
	w := output(out)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(set); err != nil {
		die("%v", err)
	}
	if c, ok := w.(io.Closer); ok {
		if err := c.Close(); err != nil {
			die("%v", err)
		}
	}
}

func readBaseline(path string) *stats.BenchSet {
	data, err := os.ReadFile(path)
	if err != nil {
		die("%v", err)
	}
	set := &stats.BenchSet{}
	if err := json.Unmarshal(data, set); err != nil {
		die("%s: %v", path, err)
	}
	return set
}

func checkOrDie(base, fresh *stats.BenchSet) {
	errs := stats.CheckGates(base, fresh)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "sanbench: FAIL %v\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
}

// stampConfig adds the machine facts `go test` does not print but that
// change wall-clock numbers: the CPU count and, on amd64, the
// microarchitecture level the binary was compiled for.
func stampConfig(set *stats.BenchSet) {
	set.Config["ncpu"] = strconv.Itoa(runtime.NumCPU())
	if runtime.GOARCH != "amd64" {
		return
	}
	level := os.Getenv("GOAMD64")
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				level = s.Value
			}
		}
	}
	if level == "" {
		level = "v1"
	}
	set.Config["goamd64"] = level
}

func output(out *string) io.Writer {
	if *out == "" {
		return os.Stdout
	}
	f, err := os.Create(*out)
	if err != nil {
		die("%v", err)
	}
	return f
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sanbench: "+format+"\n", args...)
	os.Exit(1)
}
